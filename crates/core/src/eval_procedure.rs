//! The distributed evaluation procedures of Figures 4 and 5.
//!
//! One joint evaluation answers, for every search node `(u, v, x)` and each
//! of its queried pairs `{u, v}` with target fine block `w`, whether some
//! apex in `w` completes a negative triangle — by shipping the pair (and
//! its weight) to the node that gathered `w`'s weight tables in Step 1 and
//! shipping one bit back.
//!
//! * **Figure 4 (α = 0):** pairs go directly to the triple node
//!   `(u, v, w)`. The promise `|L^k_w| ≤ 800·√n·log n` bounds every link's
//!   load, so the exchange takes `O(log n)` rounds.
//! * **Figure 5 (α > 0):** class-`α` triples may attract `2^α` times more
//!   queries, but Lemma 4 shows there are `2^α` times *fewer* of them — so
//!   each triple's data is duplicated onto `≈ 2^α / (720 log n)` fresh
//!   nodes (Step 0, a one-time `O(n^{1/4})`-round broadcast) and every
//!   query list is split across the copies, restoring `O(log² n)`-round
//!   evaluations.
//!
//! Exceeding the list bound is precisely the "atypical input" event of
//! Section 4.2: the procedure refuses (returns
//! [`AtypicalInputError`]), as the truncated evaluator `C̃m` does.

use crate::gather::GatheredWeights;
use crate::instance::Instance;
use crate::lambda::KeptPair;
use crate::wire::{pair_bits, weight_bits, Wire};
use qcc_congest::{Clique, CongestError, Envelope, NodeId};
use qcc_quantum::AtypicalInputError;
use std::collections::HashMap;

/// One query of a joint evaluation: "does pair `{u, v}` form a negative
/// triangle with an apex in fine block `target`?", asked by `search_label`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalQuery {
    /// The `(u, v, x)` search label asking the question.
    pub search_label: usize,
    /// The queried pair with its loaded weight.
    pub pair: KeptPair,
    /// The fine block `w` to probe for apexes.
    pub target: usize,
}

/// Per-α evaluation context: the duplication layout of Figure 5.
///
/// For `α = 0` (or whenever the duplication count is 1) queries go to the
/// original triple nodes and no Step-0 broadcast happens — Figure 4.
#[derive(Clone, Debug)]
pub struct AlphaContext {
    /// The class this context serves.
    pub alpha: u32,
    /// Copies per triple (`max(1, ⌊2^α/(720 log n)⌋)`).
    pub dup: usize,
    /// Host of copy `y` of each class-α triple label.
    copy_node: HashMap<(usize, usize), NodeId>,
}

impl AlphaContext {
    /// The node hosting copy `y` of triple `label`.
    ///
    /// # Panics
    ///
    /// Panics if the triple is not of this context's class or `y ≥ dup`.
    pub fn copy_node(&self, label: usize, y: usize) -> NodeId {
        *self
            .copy_node
            .get(&(label, y))
            .unwrap_or_else(|| panic!("triple {label} copy {y} not in this α-context"))
    }

    /// Non-panicking [`AlphaContext::copy_node`]: `None` if the triple is
    /// not of this context's class or `y ≥ dup`.
    pub fn try_copy_node(&self, label: usize, y: usize) -> Option<NodeId> {
        self.copy_node.get(&(label, y)).copied()
    }

    /// Builds the context for class `alpha` and, when `dup > 1`, performs
    /// the Step-0 duplication broadcast of the gathered weight tables
    /// (charged to the network).
    ///
    /// `class_labels` lists the triple labels of class `alpha`.
    ///
    /// # Errors
    ///
    /// Returns a [`CongestError`] only on simulator-level addressing bugs.
    pub fn build(
        inst: &Instance<'_>,
        net: &mut Clique,
        alpha: u32,
        class_labels: &[usize],
    ) -> Result<Self, CongestError> {
        let n = inst.n();
        let dup = inst.params.dup_count(n, alpha);
        let mut copy_node = HashMap::new();
        // Deterministic relabeling: copies are spread round-robin over all
        // nodes (the paper assigns the fresh labels (u, v, w, y) to the n
        // network nodes; Lemma 4 guarantees they fit up to constants).
        let mut next = 0usize;
        for &label in class_labels {
            for y in 0..dup {
                let node = if dup == 1 {
                    // Figure 4: queries go to the original triple node.
                    NodeId::new(inst.triples.labeling().node_of(label))
                } else {
                    let node = NodeId::new(next % n);
                    next += 1;
                    node
                };
                copy_node.insert((label, y), node);
            }
        }
        let ctx = AlphaContext {
            alpha,
            dup,
            copy_node,
        };

        if dup > 1 {
            // Step 0: broadcast each triple's gathered tables to its copies.
            net.begin_phase(&format!("step3/alpha{alpha}/duplicate"));
            let wb = weight_bits(inst.weight_magnitude());
            let mut sends: Vec<Envelope<Wire<usize>>> = Vec::new();
            for &label in class_labels {
                let src = NodeId::new(inst.triples.labeling().node_of(label));
                let (bu, bv, bw) = inst.triples.decode(label);
                let table_bits = wb
                    * ((inst.parts.coarse.block(bu).len() + inst.parts.coarse.block(bv).len())
                        * inst.parts.fine.block(bw).len()) as u64;
                for y in 0..dup {
                    let dst = ctx.copy_node(label, y);
                    if dst != src {
                        sends.push(Envelope::new(src, dst, Wire::new(label, table_bits)));
                    }
                }
            }
            net.route(sends)?;
        }
        Ok(ctx)
    }
}

/// Executes one joint evaluation (Figure 4 when `actx.dup == 1`, Figure 5
/// otherwise) for all queries of all search nodes simultaneously.
///
/// Returns per-query booleans in input order.
///
/// # Errors
///
/// Returns [`AtypicalInputError`] — the truncated evaluator's refusal — if
/// any per-(node, target) list exceeds the `800·2^α·√n·log n` bound, and
/// propagates [`CongestError`] on simulator-level addressing bugs.
pub fn evaluate_joint(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
) -> Result<Vec<bool>, EvalJointError> {
    let cap = inst.params.list_cap(inst.n(), actx.alpha);
    evaluate_with_cap(inst, net, gathered, actx, queries, cap)
}

/// [`evaluate_joint`] without the typicality gate: the *classical*
/// evaluator, which accepts arbitrarily concentrated query loads and simply
/// pays the congestion in rounds. Used by the classical Step-3 baseline
/// (and by the congestion ablation, experiment E12).
///
/// # Errors
///
/// Propagates [`CongestError`] on simulator-level addressing bugs.
pub fn evaluate_joint_unbounded(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
) -> Result<Vec<bool>, EvalJointError> {
    evaluate_with_cap(inst, net, gathered, actx, queries, f64::INFINITY)
}

fn evaluate_with_cap(
    inst: &Instance<'_>,
    net: &mut Clique,
    gathered: &GatheredWeights,
    actx: &AlphaContext,
    queries: &[EvalQuery],
    cap: f64,
) -> Result<Vec<bool>, EvalJointError> {
    let n = inst.n();

    // Build the lists L^k_w and enforce the promise (the Υ_β gate).
    let mut lists: HashMap<(usize, usize), Vec<usize>> = HashMap::new();
    for (idx, q) in queries.iter().enumerate() {
        let list = lists.entry((q.search_label, q.target)).or_default();
        list.push(idx);
        if list.len() as f64 > cap {
            return Err(EvalJointError::Atypical(AtypicalInputError {
                max_frequency: list.len() as u64,
                beta: cap,
            }));
        }
    }

    let pb = pair_bits(n);
    let wb = weight_bits(inst.weight_magnitude());
    net.begin_phase(&format!("step3/alpha{}/eval-queries", actx.alpha));
    // Wire content: (query id, triple label, pair endpoints, f(u, v)).
    // The pair + weight are the `pb + wb` information bits; the ids mirror
    // addressing information already implied by the link.
    let mut sends: Vec<Envelope<Wire<(usize, usize, usize, usize, i64)>>> = Vec::new();
    for ((search_label, target), list) in &lists {
        let src = NodeId::new(inst.searches.labeling().node_of(*search_label));
        let (bu, bv, _x) = inst.searches.decode(*search_label);
        let triple_label = inst.triples.encode(bu, bv, *target);
        // Figure 5: split the list round-robin across the dup copies.
        for (pos, &idx) in list.iter().enumerate() {
            let y = pos % actx.dup;
            let dst = actx.try_copy_node(triple_label, y).ok_or_else(|| {
                EvalJointError::Internal(format!(
                    "triple {triple_label} copy {y} not in the α = {} context",
                    actx.alpha
                ))
            })?;
            let q = &queries[idx];
            sends.push(Envelope::new(
                src,
                dst,
                Wire::new(
                    (idx, triple_label, q.pair.u, q.pair.v, q.pair.weight),
                    pb + wb,
                ),
            ));
        }
    }
    let boxes = net.exchange(sends)?;

    // Copy nodes answer from their gathered tables.
    net.begin_phase(&format!("step3/alpha{}/eval-answers", actx.alpha));
    let mut replies: Vec<Envelope<Wire<(usize, bool)>>> = Vec::new();
    for host in NodeId::all(n) {
        for (asker, msg) in boxes.of(host) {
            let (idx, triple_label, u, v, f_uv) = msg.value;
            let answer = gathered
                .check_negative(inst, triple_label, u, v, f_uv)
                .map_err(|e| EvalJointError::Internal(e.to_string()))?;
            replies.push(Envelope::new(
                host,
                *asker,
                Wire::new((idx, answer), pb + 1),
            ));
        }
    }
    let answer_boxes = net.exchange(replies)?;

    let mut answers = vec![false; queries.len()];
    let mut answered = vec![false; queries.len()];
    for node in NodeId::all(n) {
        for (_src, msg) in answer_boxes.of(node) {
            let (idx, ans) = msg.value;
            answers[idx] = ans;
            answered[idx] = true;
        }
    }
    // On a reliable network every query is answered; on a fault-injected
    // one without the delivery envelope, lost messages surface here.
    if let Some(idx) = answered.iter().position(|&a| !a) {
        return Err(EvalJointError::Internal(format!(
            "query {idx} of {} went unanswered — messages lost in transit",
            queries.len()
        )));
    }
    Ok(answers)
}

/// Errors of a joint evaluation.
#[derive(Clone, Debug)]
pub enum EvalJointError {
    /// The truncated evaluator refused an atypical query load.
    Atypical(AtypicalInputError),
    /// Simulator-level addressing bug.
    Congest(CongestError),
    /// Broken invariant: a foreign pair, an unknown triple copy, or an
    /// unanswered query (lost messages on an unprotected faulty network).
    Internal(String),
}

impl From<CongestError> for EvalJointError {
    fn from(e: CongestError) -> Self {
        EvalJointError::Congest(e)
    }
}

impl std::fmt::Display for EvalJointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalJointError::Atypical(e) => write!(f, "{e}"),
            EvalJointError::Congest(e) => write!(f, "{e}"),
            EvalJointError::Internal(context) => write!(f, "{context}"),
        }
    }
}

impl std::error::Error for EvalJointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::gather_weights;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_class0(inst: &Instance<'_>) -> Vec<usize> {
        (0..inst.triples.labeling().label_count()).collect()
    }

    #[test]
    fn answers_match_the_census() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = random_ugraph(16, 0.6, 5, &mut rng);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();

        // one query per (edge of S, fine block)
        let mut queries = Vec::new();
        let mut expected = Vec::new();
        for (u, v, w) in g.edges() {
            let bu = inst.parts.coarse.block_of(u);
            let bv = inst.parts.coarse.block_of(v);
            for target in 0..inst.parts.fine.num_blocks() {
                // x = 0 search label of this block pair
                let search_label = inst.searches.encode(bu, bv, 0);
                queries.push(EvalQuery {
                    search_label,
                    pair: KeptPair { u, v, weight: w },
                    target,
                });
                expected.push(inst.has_apex_in_block(u, v, target));
            }
        }
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
        assert_eq!(answers, expected);
    }

    #[test]
    fn list_cap_violation_is_atypical() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper();
        params.list_bound = 0.01; // cap < 1: every nonempty list is atypical
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();
        let queries = vec![EvalQuery {
            search_label: 0,
            pair: KeptPair {
                u: 0,
                v: 1,
                weight: -10,
            },
            target: 0,
        }];
        let rounds_before = net.rounds();
        match evaluate_joint(&inst, &mut net, &gathered, &actx, &queries) {
            Err(EvalJointError::Atypical(_)) => {}
            other => panic!("expected atypical refusal, got {other:?}"),
        }
        // refusal happens before any communication
        assert_eq!(net.rounds(), rounds_before);
    }

    #[test]
    fn duplication_spreads_queries_across_copies() {
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let mut params = Params::scaled();
        params.dup_denominator = 0.1; // alpha = 2 => dup = floor(4 / (0.1·4)) = 10
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let labels = all_class0(&inst);
        let actx = AlphaContext::build(&inst, &mut net, 2, &labels).unwrap();
        assert!(actx.dup > 1, "dup = {}", actx.dup);
        assert!(net.metrics().rounds_with_prefix("step3/alpha2/duplicate") > 0);

        // many queries from one search node to one target: they fan out
        let mut queries = Vec::new();
        for v in 1..10 {
            let u = 0;
            if let Some(w) = g.weight(u, v).finite() {
                let bu = inst.parts.coarse.block_of(u);
                let bv = inst.parts.coarse.block_of(v);
                queries.push(EvalQuery {
                    search_label: inst.searches.encode(bu.min(bv), bu.max(bv), 0),
                    pair: KeptPair {
                        u: u.min(v),
                        v: u.max(v),
                        weight: w,
                    },
                    target: 0,
                });
            }
        }
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
        for (q, a) in queries.iter().zip(&answers) {
            assert_eq!(*a, inst.has_apex_in_block(q.pair.u, q.pair.v, q.target));
        }
    }

    #[test]
    fn empty_query_set_is_free() {
        let g = book_graph(16, 1);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let actx = AlphaContext::build(&inst, &mut net, 0, &all_class0(&inst)).unwrap();
        let before = net.rounds();
        let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &[]).unwrap();
        assert!(answers.is_empty());
        assert_eq!(net.rounds(), before);
    }
}
