//! The self-verifying Las-Vegas APSP driver.
//!
//! On a fault-injected network the pipeline can fail in two visible ways
//! (a typed error after the reliable envelope exhausts its budget) and one
//! silent way (lost messages skew the output matrix when the envelope is
//! off). The driver turns both into a Las-Vegas guarantee: run the chosen
//! algorithm, *verify* the output with a distributed certificate, and
//! retry with fresh fault randomness until a verified matrix emerges or
//! the attempt budget runs out — then optionally degrade to the classical
//! semiring baseline as a last resort.
//!
//! ## The certificate
//!
//! A candidate matrix `D` is accepted iff
//!
//! 1. `D[i, i] = 0` for every `i` (checked locally),
//! 2. `D ≤ A₀` pointwise, where `A₀` is the adjacency matrix (locally),
//! 3. `D ⊗ D = D` under the min-plus product (one distributed
//!    [`semiring_distance_product`], charged to the network).
//!
//! Conditions 2–3 imply `D ≤ dist` by induction on path length, so the
//! certificate rejects every *overestimate*. Underestimates are outside
//! the threat model: injected faults only ever *discard* messages
//! (corruption is detected-and-dropped, never delivered mangled), and a
//! lost relaxation can only leave `D` too large — so for the failure
//! modes that can actually occur the certificate is complete.
//!
//! The verifier always runs over the reliable envelope, even when the
//! algorithm under test does not: a certificate computed on a lossy
//! channel would certify nothing.

use crate::apsp::{apsp_configured, ApspAlgorithm, ApspReport};
use crate::baselines::{semiring_apsp_configured, semiring_distance_product};
use crate::params::Params;
use crate::ApspError;
use qcc_congest::{Clique, NetConfig, ReliableConfig, TraceSink};
use qcc_graph::{DiGraph, WeightMatrix};
use rand::Rng;

/// Salt decoupling the verifier's fault randomness from the run's.
const VERIFY_SALT: u64 = 0x5eed_0000;
/// Salt for the fallback run's fault randomness.
const FALLBACK_SALT: u64 = 0xfa11_0000;

/// What to do when every Las-Vegas attempt fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FallbackPolicy {
    /// Degrade to the classical semiring baseline, run with the reliable
    /// envelope forced on, and verify it like any other attempt.
    #[default]
    Semiring,
    /// Report the failure instead of degrading.
    Fail,
}

/// Configuration of the Las-Vegas driver.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// The algorithm each attempt runs.
    pub algorithm: ApspAlgorithm,
    /// Paper constants for the pipeline algorithms.
    pub params: Params,
    /// Extra attempts after the first (total attempts = `max_retries + 1`,
    /// not counting the fallback).
    pub max_retries: u32,
    /// Verify every output with the distributed certificate. When `false`
    /// the driver still retries typed errors but accepts the first matrix
    /// that arrives.
    pub verify: bool,
    /// What to do once the attempt budget is spent.
    pub fallback: FallbackPolicy,
    /// Fault plan and envelope for the networks the attempts build. Each
    /// attempt reseeds the plan so retries see fresh fault randomness.
    pub net: NetConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            algorithm: ApspAlgorithm::QuantumTriangle,
            params: Params::paper(),
            max_retries: 3,
            verify: true,
            fallback: FallbackPolicy::Semiring,
            net: NetConfig::default(),
        }
    }
}

/// The outcome of one driver attempt (or the fallback).
#[derive(Clone, Debug)]
pub struct AttemptRecord {
    /// Attempt index (`0`-based; the fallback reuses the next index).
    pub attempt: u32,
    /// The algorithm this attempt ran.
    pub algorithm: ApspAlgorithm,
    /// Rounds this attempt charged, including its verification product
    /// and any rounds wasted by a failed run.
    pub rounds: u64,
    /// Certificate verdict: `None` when verification was skipped.
    pub verified: Option<bool>,
    /// The typed error that ended the attempt, if one did.
    pub error: Option<String>,
    /// `true` for the fallback entry.
    pub fallback: bool,
}

/// A verified APSP result with its full attempt history.
#[derive(Clone, Debug)]
pub struct DriverReport {
    /// The accepted run's report (distances, rounds, algorithm).
    pub report: ApspReport,
    /// Every attempt in order, the accepted one last.
    pub attempts: Vec<AttemptRecord>,
    /// Rounds across *all* attempts, failed ones and verification included
    /// — the honest price of the Las-Vegas loop.
    pub total_rounds: u64,
    /// `true` iff the accepted matrix passed the certificate.
    pub verified: bool,
    /// `true` iff the accepted matrix came from the fallback.
    pub used_fallback: bool,
}

/// Runs the Las-Vegas loop: attempt → verify → retry → fallback.
///
/// # Errors
///
/// * Non-retryable errors ([`ApspError::NegativeCycle`], dimension and
///   addressing bugs) propagate immediately — retrying cannot help.
/// * [`ApspError::VerificationFailed`] when no attempt (fallback
///   included) produced a matrix that passes the certificate.
/// * The last typed error when the budget runs out under
///   [`FallbackPolicy::Fail`].
///
/// # Examples
///
/// ```
/// use qcc_apsp::{apsp_driver, ApspAlgorithm, DriverConfig};
/// use qcc_graph::{floyd_warshall, DiGraph};
/// use rand::SeedableRng;
///
/// let mut g = DiGraph::new(6);
/// g.add_arc(0, 1, 2);
/// g.add_arc(1, 2, -1);
/// let cfg = DriverConfig {
///     algorithm: ApspAlgorithm::NaiveBroadcast,
///     ..DriverConfig::default()
/// };
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let out = apsp_driver(&g, &cfg, &mut rng, None)?;
/// assert!(out.verified);
/// assert_eq!(out.report.distances, floyd_warshall(&g.adjacency_matrix())?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn apsp_driver<R: Rng>(
    g: &DiGraph,
    cfg: &DriverConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<DriverReport, ApspError> {
    if let Some(sink) = trace {
        sink.open_span("driver");
    }
    let result = drive(g, cfg, rng, trace);
    if let Some(sink) = trace {
        sink.close_span();
    }
    result
}

fn drive<R: Rng>(
    g: &DiGraph,
    cfg: &DriverConfig,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<DriverReport, ApspError> {
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut total_rounds = 0u64;
    let mut last_error: Option<ApspError> = None;

    for attempt in 0..=cfg.max_retries {
        let netcfg = cfg.net.reseeded(u64::from(attempt));
        if let Some(sink) = trace {
            sink.open_span(&format!("attempt-{attempt}"));
        }
        let run = apsp_configured(g, cfg.params, cfg.algorithm, rng, trace, &netcfg);
        if let Some(sink) = trace {
            sink.close_span();
        }
        match run {
            Ok(report) => {
                let mut rounds = report.rounds;
                let verdict = if cfg.verify {
                    match certify(
                        g,
                        &report.distances,
                        &hardened(&cfg.net, VERIFY_SALT + u64::from(attempt)),
                        trace,
                        &format!("verify-{attempt}"),
                    ) {
                        Ok((ok, vrounds)) => {
                            rounds += vrounds;
                            Some(ok)
                        }
                        Err(e) => {
                            // The verifier itself lost its messages: the
                            // attempt proves nothing either way. Treat it
                            // like a failed run and retry.
                            rounds += e.rounds_charged();
                            total_rounds += rounds;
                            attempts.push(AttemptRecord {
                                attempt,
                                algorithm: report.algorithm,
                                rounds,
                                verified: None,
                                error: Some(e.to_string()),
                                fallback: false,
                            });
                            if !e.is_retryable() {
                                return Err(e);
                            }
                            last_error = Some(e);
                            continue;
                        }
                    }
                } else {
                    None
                };
                total_rounds += rounds;
                attempts.push(AttemptRecord {
                    attempt,
                    algorithm: report.algorithm,
                    rounds,
                    verified: verdict,
                    error: None,
                    fallback: false,
                });
                if verdict.unwrap_or(true) {
                    return Ok(DriverReport {
                        report,
                        attempts,
                        total_rounds,
                        verified: verdict.unwrap_or(false),
                        used_fallback: false,
                    });
                }
            }
            Err(e) => {
                let rounds = e.rounds_charged();
                total_rounds += rounds;
                attempts.push(AttemptRecord {
                    attempt,
                    algorithm: cfg.algorithm,
                    rounds,
                    verified: None,
                    error: Some(e.to_string()),
                    fallback: false,
                });
                if !e.is_retryable() {
                    return Err(e);
                }
                last_error = Some(e);
            }
        }
    }

    match cfg.fallback {
        FallbackPolicy::Fail => match last_error {
            Some(e) => Err(e),
            None => Err(ApspError::VerificationFailed {
                attempts: attempts.len() as u32,
            }),
        },
        FallbackPolicy::Semiring => {
            fallback(g, cfg, trace, attempts, total_rounds).map_err(|e| match e {
                // The fallback's own failure still means "nothing verified".
                e if e.is_retryable() => ApspError::VerificationFailed {
                    attempts: cfg.max_retries + 2,
                },
                e => e,
            })
        }
    }
}

/// The last resort: the classical semiring baseline under a forced
/// reliable envelope, verified like any other attempt.
fn fallback(
    g: &DiGraph,
    cfg: &DriverConfig,
    trace: Option<&TraceSink>,
    mut attempts: Vec<AttemptRecord>,
    mut total_rounds: u64,
) -> Result<DriverReport, ApspError> {
    let attempt = cfg.max_retries + 1;
    let netcfg = hardened(&cfg.net, FALLBACK_SALT);
    if let Some(sink) = trace {
        sink.open_span("fallback");
    }
    let run = semiring_apsp_configured(g, cfg.params.worker_threads(), trace, &netcfg);
    if let Some(sink) = trace {
        sink.close_span();
    }
    let report = run?;
    let mut rounds = report.rounds;
    let verdict = if cfg.verify {
        let (ok, vrounds) = certify(
            g,
            &report.distances,
            &hardened(&cfg.net, VERIFY_SALT + u64::from(attempt)),
            trace,
            "verify-fallback",
        )?;
        rounds += vrounds;
        Some(ok)
    } else {
        None
    };
    total_rounds += rounds;
    attempts.push(AttemptRecord {
        attempt,
        algorithm: report.algorithm,
        rounds,
        verified: verdict,
        error: None,
        fallback: true,
    });
    if verdict == Some(false) {
        return Err(ApspError::VerificationFailed {
            attempts: attempts.len() as u32,
        });
    }
    Ok(DriverReport {
        report,
        attempts,
        total_rounds,
        verified: verdict.unwrap_or(false),
        used_fallback: true,
    })
}

/// The verifier's network config: same fault plan (reseeded by `salt`),
/// reliable envelope forced on with a generous retry budget — the
/// verifier and the fallback are the last line of defense, so they never
/// run unprotected and get more retransmit waves than a regular attempt.
pub(crate) fn hardened(net: &NetConfig, salt: u64) -> NetConfig {
    let mut cfg = net.reseeded(salt);
    if cfg.faults.is_some() {
        let base = cfg.reliable.unwrap_or_default();
        cfg.reliable = Some(ReliableConfig {
            max_retries: base.max_retries.max(32),
            ..base
        });
    }
    cfg
}

/// Checks the three-part certificate. Returns `(verdict, rounds charged)`;
/// the distributed product's rounds are charged even on rejection.
///
/// # Errors
///
/// [`ApspError::Faulted`] when the verification product itself dies on the
/// (fault-injected) network.
fn certify(
    g: &DiGraph,
    d: &WeightMatrix,
    netcfg: &NetConfig,
    trace: Option<&TraceSink>,
    label: &str,
) -> Result<(bool, u64), ApspError> {
    let n = g.n();
    // (1) zero diagonal + (2) D ≤ A₀ pointwise — the local conditions,
    // shared with the serve-path delta repair.
    if !qcc_graph::certificate_local_ok(&g.adjacency_matrix(), d) {
        return Ok((false, 0));
    }
    // (3) D ⊗ D = D, distributed.
    let mut net = Clique::new(n)?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    net.push_span(label);
    let dd = match semiring_distance_product(d, d, &mut net) {
        Ok(dd) => dd,
        Err(e) => {
            net.close_all_spans();
            return Err(ApspError::faulted(net.rounds(), e));
        }
    };
    net.close_all_spans();
    Ok((&dd == d, net.rounds()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_congest::FaultPlan;
    use qcc_graph::{floyd_warshall, random_reweighted_digraph, ExtWeight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_cfg(net: NetConfig) -> DriverConfig {
        DriverConfig {
            algorithm: ApspAlgorithm::NaiveBroadcast,
            net,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn clean_run_verifies_in_one_attempt() {
        let mut rng = StdRng::seed_from_u64(201);
        let g = random_reweighted_digraph(10, 0.5, 6, &mut rng);
        let out = apsp_driver(&g, &naive_cfg(NetConfig::default()), &mut rng, None).unwrap();
        assert_eq!(out.attempts.len(), 1);
        assert!(out.verified && !out.used_fallback);
        assert_eq!(out.attempts[0].verified, Some(true));
        assert_eq!(
            out.report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
        // total = run + verification product
        assert!(out.total_rounds > out.report.rounds);
    }

    #[test]
    fn enveloped_faults_still_verify_exactly() {
        let mut rng = StdRng::seed_from_u64(202);
        let g = random_reweighted_digraph(10, 0.5, 6, &mut rng);
        let plan = FaultPlan::parse("drop=0.2,corrupt=0.05,dup=0.1,seed=11").unwrap();
        let out = apsp_driver(&g, &naive_cfg(NetConfig::faulty(plan)), &mut rng, None).unwrap();
        assert!(out.verified);
        assert_eq!(
            out.report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
    }

    #[test]
    fn unprotected_faults_degrade_to_the_fallback() {
        let mut rng = StdRng::seed_from_u64(203);
        let g = random_reweighted_digraph(10, 0.6, 6, &mut rng);
        // Heavy drops, no envelope: every pipeline attempt loses rows and
        // its (over-estimated) matrix flunks the certificate.
        let net = NetConfig {
            faults: Some(FaultPlan::parse("drop=0.35,seed=12").unwrap()),
            reliable: None,
        };
        let mut cfg = naive_cfg(net);
        cfg.max_retries = 1;
        let out = apsp_driver(&g, &cfg, &mut rng, None).unwrap();
        assert!(out.used_fallback && out.verified);
        assert_eq!(out.attempts.len(), 3); // 2 failed attempts + fallback
        assert!(out.attempts[..2]
            .iter()
            .all(|a| a.verified == Some(false) || a.error.is_some()));
        assert!(out.attempts[2].fallback);
        assert_eq!(out.attempts[2].algorithm, ApspAlgorithm::SemiringSquaring);
        assert_eq!(
            out.report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
    }

    #[test]
    fn fallback_policy_fail_surfaces_the_last_error() {
        let mut rng = StdRng::seed_from_u64(204);
        let g = random_reweighted_digraph(8, 0.6, 6, &mut rng);
        let net = NetConfig {
            faults: Some(FaultPlan::parse("drop=0.5,seed=13").unwrap()),
            reliable: None,
        };
        let mut cfg = naive_cfg(net);
        cfg.max_retries = 0;
        cfg.fallback = FallbackPolicy::Fail;
        let err = apsp_driver(&g, &cfg, &mut rng, None).unwrap_err();
        // Either a typed error from the run or verification exhaustion —
        // both are honest; what must NOT happen is a silent wrong answer.
        assert!(
            err.is_retryable() || matches!(err, ApspError::VerificationFailed { .. }),
            "unexpected terminal error: {err}"
        );
    }

    #[test]
    fn negative_cycles_are_not_retried() {
        let mut g = DiGraph::new(6);
        g.add_arc(0, 1, -4);
        g.add_arc(1, 0, 2);
        let mut rng = StdRng::seed_from_u64(205);
        let err = apsp_driver(&g, &naive_cfg(NetConfig::default()), &mut rng, None).unwrap_err();
        assert_eq!(err, ApspError::NegativeCycle);
    }

    #[test]
    fn certificate_rejects_tampered_matrices() {
        let mut rng = StdRng::seed_from_u64(206);
        let g = random_reweighted_digraph(9, 0.5, 6, &mut rng);
        let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let clean = NetConfig::default();
        assert!(certify(&g, &exact, &clean, None, "v").unwrap().0);

        // Overestimate one reachable off-diagonal entry: condition 2 or 3
        // must catch it.
        let mut skewed = exact.clone();
        let (mut u, mut v) = (0, 0);
        'outer: for i in 0..g.n() {
            for j in 0..g.n() {
                if i != j && skewed[(i, j)] != ExtWeight::PosInf {
                    (u, v) = (i, j);
                    break 'outer;
                }
            }
        }
        skewed[(u, v)] = skewed[(u, v)] + ExtWeight::from(1);
        assert!(!certify(&g, &skewed, &clean, None, "v").unwrap().0);

        // Nonzero diagonal: condition 1.
        let mut bad_diag = exact.clone();
        bad_diag[(0, 0)] = ExtWeight::from(1);
        let (ok, rounds) = certify(&g, &bad_diag, &clean, None, "v").unwrap();
        assert!(!ok);
        assert_eq!(rounds, 0, "local rejection must be free");
    }

    #[test]
    fn quantum_pipeline_drives_end_to_end() {
        let mut rng = StdRng::seed_from_u64(207);
        let g = random_reweighted_digraph(8, 0.5, 4, &mut rng);
        let cfg = DriverConfig {
            algorithm: ApspAlgorithm::QuantumTriangle,
            ..DriverConfig::default()
        };
        let out = apsp_driver(&g, &cfg, &mut rng, None).unwrap();
        assert!(out.verified && !out.used_fallback);
        assert_eq!(
            out.report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
    }
}
