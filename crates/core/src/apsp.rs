//! The end-to-end APSP algorithms (Proposition 3, Theorem 1).
//!
//! `A_G^{n}` under the distance product holds all shortest distances, and
//! repeated squaring needs only `⌈log₂(n−1)⌉` products, each computed with
//! the Proposition 2 binary search over `FindEdges`. With the quantum
//! `FindEdges` backend the total cost is `O~(n^{1/4} log W)` rounds —
//! Theorem 1; with the classical backend the same pipeline costs
//! `O~(√n log W)`, and two further baselines (full broadcast, semiring
//! matrix multiplication) complete the comparison of experiment E9.

use crate::distance_product::distributed_distance_product_configured;
use crate::params::Params;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_congest::{NetConfig, TraceSink};
use qcc_graph::{DiGraph, ExtWeight, WeightMatrix};
use rand::Rng;

/// Which APSP algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApspAlgorithm {
    /// Theorem 1: repeated squaring over quantum `FindEdges`
    /// (`O~(n^{1/4} log W)` rounds).
    QuantumTriangle,
    /// The same pipeline with classical Step-3 searches
    /// (`O~(√n log W)` rounds).
    ClassicalTriangle,
    /// Full input broadcast + local Floyd–Warshall (`O(n)` rounds).
    NaiveBroadcast,
    /// Distributed semiring matrix multiplication (Censor-Hillel et al.,
    /// `O~(n^{1/3})` rounds).
    SemiringSquaring,
}

/// Result of an APSP run.
#[derive(Clone, Debug)]
pub struct ApspReport {
    /// All-pairs shortest distances (`dist[(u, v)]`).
    pub distances: WeightMatrix,
    /// Rounds on the physical `n`-node network (simulation factors already
    /// applied, see [`crate::distance_product`]).
    pub rounds: u64,
    /// Distance products performed (the `O(log n)` squaring factor).
    pub products: u32,
    /// The algorithm that produced this report.
    pub algorithm: ApspAlgorithm,
}

/// Solves APSP on a weighted digraph with the selected algorithm.
///
/// # Errors
///
/// * [`ApspError::NegativeCycle`] if the graph has a negative cycle.
/// * Propagated errors from the underlying distributed subroutines.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{apsp, ApspAlgorithm, Params};
/// use qcc_graph::{floyd_warshall, DiGraph};
/// use rand::SeedableRng;
///
/// let mut g = DiGraph::new(8);
/// g.add_arc(0, 1, 2);
/// g.add_arc(1, 2, -1);
/// g.add_arc(2, 3, 5);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let report = apsp(&g, Params::paper(), ApspAlgorithm::NaiveBroadcast, &mut rng)?;
/// assert_eq!(report.distances, floyd_warshall(&g.adjacency_matrix())?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn apsp<R: Rng>(
    g: &DiGraph,
    params: Params,
    algorithm: ApspAlgorithm,
    rng: &mut R,
) -> Result<ApspReport, ApspError> {
    apsp_traced(g, params, algorithm, rng, None)
}

/// [`apsp`] with an optional NDJSON trace sink.
///
/// The run is wrapped in a root `apsp` span; each squaring product becomes
/// a `product-k` child scaled by the virtual-network simulation factor, so
/// the trace's scaled root-span round total equals [`ApspReport::rounds`]
/// exactly (`qcc trace-summary --expect-rounds` checks this). Round charges
/// are byte-identical with and without a sink.
///
/// # Errors
///
/// Same as [`apsp`].
pub fn apsp_traced<R: Rng>(
    g: &DiGraph,
    params: Params,
    algorithm: ApspAlgorithm,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<ApspReport, ApspError> {
    apsp_configured(g, params, algorithm, rng, trace, &NetConfig::default())
}

/// [`apsp_traced`] with a network configuration: every internal `Clique`
/// is armed with `netcfg`'s fault plan and reliable-delivery envelope.
///
/// # Errors
///
/// Same as [`apsp`]; additionally, injected faults that break through the
/// envelope surface as [`ApspError::Faulted`], carrying the physical rounds
/// the failed run already charged (so callers can account for wasted work).
pub fn apsp_configured<R: Rng>(
    g: &DiGraph,
    params: Params,
    algorithm: ApspAlgorithm,
    rng: &mut R,
    trace: Option<&TraceSink>,
    netcfg: &NetConfig,
) -> Result<ApspReport, ApspError> {
    match algorithm {
        ApspAlgorithm::QuantumTriangle => {
            squaring_apsp(g, params, SearchBackend::Quantum, rng, trace, netcfg)
        }
        ApspAlgorithm::ClassicalTriangle => {
            squaring_apsp(g, params, SearchBackend::Classical, rng, trace, netcfg)
        }
        ApspAlgorithm::NaiveBroadcast => crate::baselines::naive_broadcast_apsp_configured(
            g,
            params.worker_threads(),
            trace,
            netcfg,
        ),
        ApspAlgorithm::SemiringSquaring => {
            crate::baselines::semiring_apsp_configured(g, params.worker_threads(), trace, netcfg)
        }
    }
}

fn squaring_apsp<R: Rng>(
    g: &DiGraph,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
    trace: Option<&TraceSink>,
    netcfg: &NetConfig,
) -> Result<ApspReport, ApspError> {
    let n = g.n();
    let mut current = g.adjacency_matrix();
    let mut rounds = 0u64;
    let mut products = 0u32;
    if let Some(sink) = trace {
        sink.open_span("apsp");
    }
    // Square until the exponent reaches n - 1 (paths need at most n - 1 arcs).
    let mut exponent: u64 = 1;
    while exponent < (n.max(2) as u64) - 1 {
        let result = if let Some(sink) = trace {
            // Each product runs on a virtual Clique(3n); its subtree counts
            // simulation_factor-fold toward the physical total.
            sink.open_span_scaled(&format!("product-{products}"), 9);
            let result = distributed_distance_product_configured(
                &current, &current, params, backend, rng, trace, netcfg,
            );
            sink.close_span();
            result
        } else {
            distributed_distance_product_configured(
                &current, &current, params, backend, rng, None, netcfg,
            )
        };
        let report = match result {
            Ok(report) => report,
            Err(e) => {
                if let Some(sink) = trace {
                    sink.close_span(); // the "apsp" root
                }
                // Completed products plus the aborted one: the full bill.
                return Err(ApspError::faulted(rounds + e.rounds_charged(), e));
            }
        };
        debug_assert_eq!(report.simulation_factor, 9);
        rounds += report.physical_rounds();
        current = report.product;
        products += 1;
        exponent *= 2;
    }
    if let Some(sink) = trace {
        sink.close_span(); // the "apsp" root
    }
    // Negative cycle ⟺ some negative diagonal entry of the closure.
    for i in 0..n {
        if current[(i, i)] < ExtWeight::ZERO {
            return Err(ApspError::NegativeCycle);
        }
    }
    let algorithm = match backend {
        SearchBackend::Quantum => ApspAlgorithm::QuantumTriangle,
        SearchBackend::Classical => ApspAlgorithm::ClassicalTriangle,
    };
    Ok(ApspReport {
        distances: current,
        rounds,
        products,
        algorithm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{floyd_warshall, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantum_apsp_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(111);
        let g = random_reweighted_digraph(8, 0.5, 4, &mut rng);
        let expected = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.distances, expected);
        assert!(report.rounds > 0);
        assert!(report.products >= 3); // ceil(log2(7))
    }

    #[test]
    fn classical_triangle_apsp_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(112);
        let g = random_reweighted_digraph(10, 0.4, 5, &mut rng);
        let expected = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::ClassicalTriangle,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.distances, expected);
    }

    #[test]
    fn disconnected_vertices_stay_infinite() {
        let mut g = DiGraph::new(6);
        g.add_arc(0, 1, 3);
        let mut rng = StdRng::seed_from_u64(113);
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::ClassicalTriangle,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.distances[(0, 1)], ExtWeight::from(3));
        assert_eq!(report.distances[(1, 0)], ExtWeight::PosInf);
        assert_eq!(report.distances[(4, 5)], ExtWeight::PosInf);
    }

    #[test]
    fn negative_cycle_is_reported() {
        let mut g = DiGraph::new(6);
        g.add_arc(0, 1, 1);
        g.add_arc(1, 2, -3);
        g.add_arc(2, 0, 1);
        let mut rng = StdRng::seed_from_u64(114);
        let err = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::ClassicalTriangle,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(err, ApspError::NegativeCycle);
    }

    #[test]
    fn tiny_graphs_work() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, 1, -4);
        let mut rng = StdRng::seed_from_u64(115);
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.distances[(0, 1)], ExtWeight::from(-4));
        assert_eq!(report.distances[(0, 0)], ExtWeight::ZERO);
    }
}
