//! The APSP query engine behind `qcc serve`.
//!
//! Compute once, serve many: the engine runs one APSP (via the Las-Vegas
//! [`apsp_driver`] so `--faults`/`--verify` compose, or via witnessed
//! squaring so explicit routes come for free) and then answers `dist` /
//! `path` point queries from the cached tables. Three layers keep the hot
//! path fast without giving up exactness:
//!
//! * **Batching** — [`QueryEngine::answer_batch`] answers a drained queue
//!   of requests in one pass, stably reordering read-only runs by source
//!   vertex so each distance row is fetched once per batch.
//! * **Row cache** — with a `--row-cache N` budget the engine keeps only
//!   `N` per-source rows resident (LRU eviction) and recomputes evicted
//!   rows on demand by single-source relaxation
//!   ([`sssp_row_with_parents`]), so huge `n` never needs the `O(n²)`
//!   matrix in memory.
//! * **Delta repair** — an `update` request with decrease-only edge
//!   changes is repaired incrementally by **one** min-plus product
//!   ([`delta_repair_candidate`]) and accepted only when the PR-5 fixpoint
//!   certificate passes ([`min_plus_fixpoint_certificate`]); any other
//!   outcome falls back to a full recompute. Updates that would create a
//!   negative cycle are rejected and the previous state is kept.
//!
//! The wire format is NDJSON, one request object per line (matching the
//! `TraceSink` idiom); see [`parse_request`] for the schema. Malformed
//! lines become `{"ok":false,...}` error responses, never panics.

use crate::apsp_paths::apsp_with_paths_traced;
use crate::driver::{apsp_driver, DriverConfig};
use crate::params::Params;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_congest::TraceSink;
use qcc_graph::{
    delta_repair_candidate, floyd_warshall, has_negative_cycle, min_plus_fixpoint_certificate,
    parent_path, sssp_row_with_parents, DiGraph, EdgeDelta, ExtWeight, PathOracle, WeightMatrix,
};
use rand::Rng;
use std::collections::HashMap;
use std::fmt::Write as _;

/// How the engine computes its initial distance tables.
#[derive(Clone, Debug)]
pub enum LoadPlan {
    /// Distributed witnessed squaring ([`crate::apsp_with_paths`]):
    /// distances plus the witness structure for explicit routes.
    Witnessed {
        /// Quantum or classical Step-3 searches.
        backend: SearchBackend,
    },
    /// The Las-Vegas driver ([`apsp_driver`]): fault injection,
    /// certificate verification and the semiring fallback all compose.
    /// Routes are served from per-source relaxations instead of witnesses.
    Driver(Box<DriverConfig>),
}

/// Configuration of a [`QueryEngine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// How to compute the initial tables.
    pub plan: LoadPlan,
    /// Paper constants for the witnessed-squaring plan.
    pub params: Params,
    /// `Some(cap)` bounds resident memory to `cap` per-source rows (LRU);
    /// `None` keeps the full matrix.
    pub row_cache: Option<usize>,
}

/// What the initial APSP run reported, echoed in the `ready` banner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Rounds charged on the simulated network (all attempts, for the
    /// driver plan).
    pub rounds: u64,
    /// Certificate verdict of the accepted matrix (`None` when
    /// verification was not requested).
    pub verified: Option<bool>,
    /// Whether the accepted matrix came from the semiring fallback.
    pub used_fallback: bool,
}

/// Serving counters, exposed by the `stats` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Point queries answered (`dist` + `path`).
    pub queries: u64,
    /// `dist` queries answered.
    pub dist_queries: u64,
    /// `path` queries answered.
    pub path_queries: u64,
    /// `update` requests applied (rejected ones excluded).
    pub updates: u64,
    /// Batches processed.
    pub batches: u64,
    /// Row-cache lookups served from a resident row.
    pub row_hits: u64,
    /// Row-cache lookups that paid a single-source relaxation.
    pub row_misses: u64,
    /// Rows evicted by the LRU policy.
    pub row_evictions: u64,
    /// Updates repaired by one certified min-plus product.
    pub delta_repairs: u64,
    /// Updates that fell back to a full recompute (or, in row mode,
    /// invalidated the cache).
    pub full_recomputes: u64,
}

/// One edge change inside an `update` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeChange {
    /// Tail vertex.
    pub u: usize,
    /// Head vertex.
    pub v: usize,
    /// New weight; `None` removes the arc.
    pub weight: Option<i64>,
}

/// A parsed serve request (one NDJSON line).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeRequest {
    /// Shortest distance from `u` to `v`.
    Dist {
        /// Client-chosen id echoed in the response.
        id: Option<i64>,
        /// Source vertex.
        u: usize,
        /// Target vertex.
        v: usize,
    },
    /// Explicit shortest route from `u` to `v`.
    Path {
        /// Client-chosen id echoed in the response.
        id: Option<i64>,
        /// Source vertex.
        u: usize,
        /// Target vertex.
        v: usize,
    },
    /// Apply edge-weight changes and repair the tables.
    Update {
        /// Client-chosen id echoed in the response.
        id: Option<i64>,
        /// The changes, applied atomically.
        changes: Vec<EdgeChange>,
    },
    /// Report the serving counters.
    Stats {
        /// Client-chosen id echoed in the response.
        id: Option<i64>,
    },
    /// Stop serving after answering.
    Shutdown {
        /// Client-chosen id echoed in the response.
        id: Option<i64>,
    },
}

impl ServeRequest {
    /// Whether the request only reads the tables (batchable/reorderable).
    fn read_source(&self) -> Option<usize> {
        match *self {
            ServeRequest::Dist { u, .. } | ServeRequest::Path { u, .. } => Some(u),
            _ => None,
        }
    }
}

/// The responses of one batch, in request order.
#[derive(Clone, Debug)]
pub struct BatchOutput {
    /// One rendered NDJSON line per request.
    pub responses: Vec<String>,
    /// `true` when the batch contained a `shutdown` request.
    pub shutdown: bool,
}

/// How an update was absorbed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateMethod {
    /// One certified min-plus product repaired the matrix.
    DeltaRepair,
    /// Full recompute (dense mode) or cache invalidation (row mode).
    Recompute,
    /// Every change restated the existing weight; nothing to do.
    Noop,
}

impl UpdateMethod {
    fn as_str(self) -> &'static str {
        match self {
            UpdateMethod::DeltaRepair => "delta_repair",
            UpdateMethod::Recompute => "full_recompute",
            UpdateMethod::Noop => "noop",
        }
    }
}

struct CachedRow {
    dist: Vec<ExtWeight>,
    parents: Option<Vec<Option<usize>>>,
    tick: u64,
}

/// The serving engine: one APSP run's tables plus the machinery to answer
/// point queries, absorb updates, and bound resident memory.
pub struct QueryEngine {
    graph: DiGraph,
    /// Dense mode: the full distance matrix.
    distances: Option<WeightMatrix>,
    /// Witness structure from the initial run (dense mode only; dropped
    /// on the first update).
    oracle: Option<PathOracle>,
    rows: HashMap<usize, CachedRow>,
    row_cap: usize,
    tick: u64,
    stats: ServeStats,
    load: LoadReport,
}

impl QueryEngine {
    /// Runs the configured APSP once and builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates the underlying run's [`ApspError`] — notably
    /// [`ApspError::VerificationFailed`] when the driver plan exhausts its
    /// attempts without a certified matrix.
    pub fn load<R: Rng>(
        graph: DiGraph,
        cfg: &EngineConfig,
        rng: &mut R,
        trace: Option<&TraceSink>,
    ) -> Result<QueryEngine, ApspError> {
        let (distances, oracle, load) = match &cfg.plan {
            LoadPlan::Witnessed { backend } => {
                let rep = apsp_with_paths_traced(&graph, cfg.params, *backend, rng, trace)?;
                let load = LoadReport {
                    rounds: rep.rounds,
                    verified: None,
                    used_fallback: false,
                };
                (rep.oracle.distances().clone(), Some(rep.oracle), load)
            }
            LoadPlan::Driver(dc) => {
                let rep = apsp_driver(&graph, dc, rng, trace)?;
                let load = LoadReport {
                    rounds: rep.total_rounds,
                    verified: dc.verify.then_some(rep.verified),
                    used_fallback: rep.used_fallback,
                };
                (rep.report.distances, None, load)
            }
        };
        Ok(Self::assemble(
            graph,
            distances,
            oracle,
            cfg.row_cache,
            load,
        ))
    }

    /// Builds an engine directly from precomputed tables — the constructor
    /// benches and tests use to skip the simulated network run. `oracle`
    /// must have been built for `graph`'s current adjacency.
    ///
    /// # Panics
    ///
    /// Panics if the oracle's dimension differs from the graph's.
    pub fn from_tables(
        graph: DiGraph,
        oracle: PathOracle,
        row_cache: Option<usize>,
    ) -> QueryEngine {
        assert_eq!(oracle.distances().n(), graph.n(), "dimension mismatch");
        let distances = oracle.distances().clone();
        let load = LoadReport {
            rounds: 0,
            verified: None,
            used_fallback: false,
        };
        Self::assemble(graph, distances, Some(oracle), row_cache, load)
    }

    fn assemble(
        graph: DiGraph,
        distances: WeightMatrix,
        oracle: Option<PathOracle>,
        row_cache: Option<usize>,
        load: LoadReport,
    ) -> QueryEngine {
        let n = graph.n();
        let mut engine = QueryEngine {
            graph,
            distances: None,
            oracle: None,
            rows: HashMap::new(),
            row_cap: n.max(1),
            tick: 0,
            stats: ServeStats::default(),
            load,
        };
        match row_cache {
            Some(cap) => {
                // Row mode: seed the cache with the first rows of the one
                // matrix we computed, then drop it. Parents are filled
                // lazily by the first path query against each row.
                engine.row_cap = cap.max(1);
                for u in 0..n.min(engine.row_cap) {
                    engine.tick += 1;
                    engine.rows.insert(
                        u,
                        CachedRow {
                            dist: distances.row(u).to_vec(),
                            parents: None,
                            tick: engine.tick,
                        },
                    );
                }
            }
            None => {
                engine.distances = Some(distances);
                engine.oracle = oracle;
            }
        }
        engine
    }

    /// Vertex count of the served graph.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// `"full"` (dense matrix resident) or `"rows"` (bounded row cache).
    pub fn mode(&self) -> &'static str {
        if self.distances.is_some() {
            "full"
        } else {
            "rows"
        }
    }

    /// The serving counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// What the initial APSP run reported.
    pub fn load_report(&self) -> &LoadReport {
        &self.load
    }

    /// The currently served graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The `ready` banner emitted before serving starts.
    pub fn ready_line(&self) -> String {
        let mut s = format!(
            "{{\"ok\":true,\"op\":\"ready\",\"n\":{},\"mode\":\"{}\",\"rounds\":{}",
            self.n(),
            self.mode(),
            self.load.rounds
        );
        match self.load.verified {
            Some(v) => {
                let _ = write!(s, ",\"verified\":{v}");
            }
            None => s.push_str(",\"verified\":null"),
        }
        let _ = write!(s, ",\"fallback\":{}}}", self.load.used_fallback);
        s
    }

    /// Answers one drained batch. Parse failures (the `Err` entries)
    /// become in-order error responses; runs of consecutive read-only
    /// requests are answered in source-sorted order (stable) so each
    /// distance row is fetched at most once per run, with responses
    /// restored to request order.
    pub fn answer_batch(&mut self, requests: &[Result<ServeRequest, String>]) -> BatchOutput {
        self.stats.batches += 1;
        let mut responses: Vec<String> = vec![String::new(); requests.len()];
        let mut shutdown = false;
        let mut i = 0;
        while i < requests.len() {
            match &requests[i] {
                Err(msg) => {
                    responses[i] = render_error(None, msg);
                    i += 1;
                }
                Ok(ServeRequest::Dist { .. } | ServeRequest::Path { .. }) => {
                    let mut run: Vec<usize> = Vec::new();
                    while i < requests.len() {
                        match &requests[i] {
                            Ok(r) if r.read_source().is_some() => {
                                run.push(i);
                                i += 1;
                            }
                            _ => break,
                        }
                    }
                    run.sort_by_key(|&k| match &requests[k] {
                        Ok(r) => r.read_source().unwrap_or(0),
                        Err(_) => 0,
                    });
                    for k in run {
                        if let Ok(r) = &requests[k] {
                            responses[k] = self.answer_read(r);
                        }
                    }
                }
                Ok(ServeRequest::Update { id, changes }) => {
                    responses[i] = self.answer_update(*id, changes);
                    i += 1;
                }
                Ok(ServeRequest::Stats { id }) => {
                    responses[i] = self.render_stats(*id);
                    i += 1;
                }
                Ok(ServeRequest::Shutdown { id }) => {
                    shutdown = true;
                    responses[i] = render_ok_head("shutdown", *id) + "}";
                    i += 1;
                }
            }
        }
        BatchOutput {
            responses,
            shutdown,
        }
    }

    /// Shortest distance from `u` to `v` (`PosInf` when unreachable).
    ///
    /// # Errors
    ///
    /// A message when an endpoint is out of range or a row recompute
    /// fails.
    pub fn dist(&mut self, u: usize, v: usize) -> Result<ExtWeight, String> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if let Some(d) = &self.distances {
            return Ok(d[(u, v)]);
        }
        self.ensure_row(u, false)?;
        Ok(self.rows[&u].dist[v])
    }

    /// Explicit shortest route from `u` to `v` with its total weight, or
    /// `None` when `v` is unreachable.
    ///
    /// # Errors
    ///
    /// A message when an endpoint is out of range or a row recompute
    /// fails.
    pub fn path(&mut self, u: usize, v: usize) -> Result<Option<(ExtWeight, Vec<usize>)>, String> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if let Some(oracle) = &self.oracle {
            let d = oracle.distances()[(u, v)];
            return Ok(oracle.path(u, v).map(|p| (d, p)));
        }
        self.ensure_row(u, true)?;
        let row = &self.rows[&u];
        let d = row.dist[v];
        if !d.is_finite() {
            return Ok(None);
        }
        let parents = row
            .parents
            .as_ref()
            .ok_or_else(|| "internal: row missing parents".to_string())?;
        let p = parent_path(u, v, parents)
            .ok_or_else(|| "internal: parent pointers did not reach the source".to_string())?;
        Ok(Some((d, p)))
    }

    /// Applies edge changes atomically: decrease-only updates in dense
    /// mode try the one-product certified repair first; everything else
    /// recomputes (dense) or invalidates the cache (row mode). An update
    /// that would create a negative cycle is rejected with the previous
    /// state fully preserved.
    ///
    /// # Errors
    ///
    /// A message naming the offending change; the graph and tables are
    /// left untouched.
    pub fn update(&mut self, changes: &[EdgeChange]) -> Result<UpdateMethod, String> {
        let n = self.n();
        for c in changes {
            if c.u >= n || c.v >= n {
                return Err(format!("edge ({}, {}) out of range for n = {n}", c.u, c.v));
            }
            if c.u == c.v {
                return Err(format!("self-loop ({}, {}) is not allowed", c.u, c.u));
            }
        }
        // Snapshot, then apply.
        let old: Vec<(usize, usize, ExtWeight)> = changes
            .iter()
            .map(|c| (c.u, c.v, self.graph.weight(c.u, c.v)))
            .collect();
        let mut decrease_only = true;
        let mut deltas: Vec<EdgeDelta> = Vec::new();
        for c in changes {
            let old_w = self.graph.weight(c.u, c.v);
            match c.weight {
                Some(w) => {
                    self.graph.add_arc(c.u, c.v, w);
                    let new_w = ExtWeight::from(w);
                    if new_w > old_w {
                        decrease_only = false;
                    } else if new_w < old_w {
                        deltas.push(EdgeDelta {
                            u: c.u,
                            v: c.v,
                            weight: new_w,
                        });
                    }
                }
                None => {
                    self.graph.remove_arc(c.u, c.v);
                    if old_w.is_finite() {
                        decrease_only = false;
                    }
                }
            }
        }
        if decrease_only && deltas.is_empty() {
            return Ok(UpdateMethod::Noop);
        }
        let method = self.absorb(decrease_only, &deltas);
        match method {
            Ok(m) => {
                self.stats.updates += 1;
                self.oracle = None;
                self.rows.clear();
                Ok(m)
            }
            Err(e) => {
                // Revert the graph; tables were not touched.
                for &(u, v, w) in &old {
                    match w {
                        ExtWeight::Finite(x) => self.graph.add_arc(u, v, x),
                        _ => self.graph.remove_arc(u, v),
                    }
                }
                Err(e)
            }
        }
    }

    /// Repair-or-recompute after the graph mutation has been applied.
    fn absorb(
        &mut self,
        decrease_only: bool,
        deltas: &[EdgeDelta],
    ) -> Result<UpdateMethod, String> {
        if decrease_only {
            if let Some(d) = &self.distances {
                let cand = delta_repair_candidate(d, deltas);
                let adj = self.graph.adjacency_matrix();
                if min_plus_fixpoint_certificate(&adj, &cand) {
                    self.distances = Some(cand);
                    self.stats.delta_repairs += 1;
                    return Ok(UpdateMethod::DeltaRepair);
                }
            }
        }
        if self.distances.is_some() {
            match floyd_warshall(&self.graph.adjacency_matrix()) {
                Ok(fw) => {
                    self.distances = Some(fw);
                    self.stats.full_recomputes += 1;
                    Ok(UpdateMethod::Recompute)
                }
                Err(_) => Err("update rejected: it would create a negative cycle".into()),
            }
        } else {
            // Row mode: no matrix to repair; rows are recomputed lazily.
            if has_negative_cycle(&self.graph) {
                return Err("update rejected: it would create a negative cycle".into());
            }
            self.stats.full_recomputes += 1;
            Ok(UpdateMethod::Recompute)
        }
    }

    fn check_vertex(&self, u: usize) -> Result<(), String> {
        if u < self.n() {
            Ok(())
        } else {
            Err(format!("vertex {u} out of range for n = {}", self.n()))
        }
    }

    /// Makes row `u` resident (with parents when `need_parents`), paying a
    /// single-source relaxation on miss and evicting the least-recently
    /// used row when over budget.
    fn ensure_row(&mut self, u: usize, need_parents: bool) -> Result<(), String> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(row) = self.rows.get_mut(&u) {
            if !need_parents || row.parents.is_some() {
                row.tick = tick;
                self.stats.row_hits += 1;
                return Ok(());
            }
        }
        let resident = self.rows.contains_key(&u);
        self.stats.row_misses += 1;
        let (dist, parents) =
            sssp_row_with_parents(&self.graph, u).map_err(|e| format!("row recompute: {e}"))?;
        if !resident && self.rows.len() >= self.row_cap {
            if let Some(&evict) = self.rows.iter().min_by_key(|(_, r)| r.tick).map(|(k, _)| k) {
                self.rows.remove(&evict);
                self.stats.row_evictions += 1;
            }
        }
        self.rows.insert(
            u,
            CachedRow {
                dist,
                parents: Some(parents),
                tick,
            },
        );
        Ok(())
    }

    fn answer_read(&mut self, req: &ServeRequest) -> String {
        match *req {
            ServeRequest::Dist { id, u, v } => {
                self.stats.queries += 1;
                self.stats.dist_queries += 1;
                match self.dist(u, v) {
                    Ok(d) => {
                        let mut s = render_ok_head("dist", id);
                        let _ = write!(s, ",\"u\":{u},\"v\":{v},\"dist\":");
                        push_weight(&mut s, d);
                        s.push('}');
                        s
                    }
                    Err(e) => render_error(id, &e),
                }
            }
            ServeRequest::Path { id, u, v } => {
                self.stats.queries += 1;
                self.stats.path_queries += 1;
                match self.path(u, v) {
                    Ok(found) => {
                        let mut s = render_ok_head("path", id);
                        let _ = write!(s, ",\"u\":{u},\"v\":{v},\"dist\":");
                        match found {
                            Some((d, p)) => {
                                push_weight(&mut s, d);
                                s.push_str(",\"path\":[");
                                for (k, x) in p.iter().enumerate() {
                                    if k > 0 {
                                        s.push(',');
                                    }
                                    let _ = write!(s, "{x}");
                                }
                                s.push(']');
                            }
                            None => s.push_str("null,\"path\":null"),
                        }
                        s.push('}');
                        s
                    }
                    Err(e) => render_error(id, &e),
                }
            }
            _ => unreachable!("answer_read only receives read requests"),
        }
    }

    fn answer_update(&mut self, id: Option<i64>, changes: &[EdgeChange]) -> String {
        match self.update(changes) {
            Ok(method) => {
                let mut s = render_ok_head("update", id);
                let _ = write!(
                    s,
                    ",\"changes\":{},\"method\":\"{}\"}}",
                    changes.len(),
                    method.as_str()
                );
                s
            }
            Err(e) => render_error(id, &e),
        }
    }

    fn render_stats(&mut self, id: Option<i64>) -> String {
        let mut s = render_ok_head("stats", id);
        let st = self.stats;
        let _ = write!(
            s,
            ",\"n\":{},\"mode\":\"{}\",\"queries\":{},\"dist_queries\":{},\
             \"path_queries\":{},\"updates\":{},\"batches\":{},\"row_hits\":{},\
             \"row_misses\":{},\"row_evictions\":{},\"delta_repairs\":{},\
             \"full_recomputes\":{}}}",
            self.n(),
            self.mode(),
            st.queries,
            st.dist_queries,
            st.path_queries,
            st.updates,
            st.batches,
            st.row_hits,
            st.row_misses,
            st.row_evictions,
            st.delta_repairs,
            st.full_recomputes
        );
        s
    }
}

fn render_ok_head(op: &str, id: Option<i64>) -> String {
    let mut s = format!("{{\"ok\":true,\"op\":\"{op}\"");
    if let Some(id) = id {
        let _ = write!(s, ",\"id\":{id}");
    }
    s
}

/// Renders an error response line.
pub fn render_error(id: Option<i64>, msg: &str) -> String {
    let mut s = String::from("{\"ok\":false");
    if let Some(id) = id {
        let _ = write!(s, ",\"id\":{id}");
    }
    s.push_str(",\"error\":\"");
    escape_into(&mut s, msg);
    s.push_str("\"}");
    s
}

fn push_weight(s: &mut String, w: ExtWeight) {
    match w {
        ExtWeight::Finite(x) => {
            let _ = write!(s, "{x}");
        }
        // NegInf cannot occur (no negative cycles survive an update);
        // render any infinity as "unreachable".
        _ => s.push_str("null"),
    }
}

fn escape_into(s: &mut String, raw: &str) {
    for ch in raw.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
}

// ---------------------------------------------------------------------
// Request parsing: a minimal JSON reader (std-only, integers + strings +
// arrays + objects — exactly what the request schema needs).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(i64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(text: &'a str) -> Self {
        Reader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(x) if x == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {}",
                b as char,
                self.pos,
                other.map_or("end of line".to_string(), |c| format!("'{}'", c as char))
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err("unexpected end of line".into()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal (expected {word})"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err("only integers are accepted".into());
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        text.parse::<i64>()
            .map(Json::Num)
            .map_err(|_| format!("number out of range: {text}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "bad utf-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err("expected ',' or ']' in array".into()),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
}

fn obj_get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_index(fields: &[(String, Json)], key: &str) -> Result<usize, String> {
    match obj_get(fields, key) {
        Some(Json::Num(x)) if *x >= 0 => Ok(*x as usize),
        Some(Json::Num(x)) => Err(format!("\"{key}\" must be nonnegative, got {x}")),
        Some(_) => Err(format!("\"{key}\" must be an integer")),
        None => Err(format!("missing field \"{key}\"")),
    }
}

fn as_id(fields: &[(String, Json)]) -> Result<Option<i64>, String> {
    match obj_get(fields, "id") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(x)) => Ok(Some(*x)),
        Some(_) => Err("\"id\" must be an integer".into()),
    }
}

fn check_keys(fields: &[(String, Json)], allowed: &[&str]) -> Result<(), String> {
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown field \"{k}\" (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

/// Parses one NDJSON request line. The schema, by `"op"`:
///
/// * `{"op":"dist","id":1,"u":0,"v":5}` — shortest distance `u → v`;
/// * `{"op":"path","id":2,"u":0,"v":5}` — explicit shortest route;
/// * `{"op":"update","id":3,"changes":[{"u":0,"v":1,"weight":7},
///   {"u":2,"v":3}]}` — set arc weights (`weight` omitted or `null`
///   deletes the arc), applied atomically;
/// * `{"op":"stats","id":4}` — serving counters;
/// * `{"op":"shutdown","id":5}` — answer, then stop serving.
///
/// `id` is optional everywhere and echoed verbatim. Unknown fields and
/// unknown ops are rejected, mirroring the strict CLI flag parser.
///
/// # Errors
///
/// A human-readable message describing the malformed line; the serve loop
/// turns it into an `{"ok":false,...}` response.
pub fn parse_request(line: &str) -> Result<ServeRequest, String> {
    let mut reader = Reader::new(line);
    let json = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err("trailing characters after the request object".into());
    }
    let Json::Obj(fields) = json else {
        return Err("request must be a JSON object".into());
    };
    let op = match obj_get(&fields, "op") {
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err("\"op\" must be a string".into()),
        None => return Err("missing field \"op\"".into()),
    };
    match op {
        "dist" | "path" => {
            check_keys(&fields, &["op", "id", "u", "v"])?;
            let id = as_id(&fields)?;
            let u = as_index(&fields, "u")?;
            let v = as_index(&fields, "v")?;
            Ok(if op == "dist" {
                ServeRequest::Dist { id, u, v }
            } else {
                ServeRequest::Path { id, u, v }
            })
        }
        "update" => {
            check_keys(&fields, &["op", "id", "changes"])?;
            let id = as_id(&fields)?;
            let Some(Json::Arr(items)) = obj_get(&fields, "changes") else {
                return Err("\"changes\" must be an array of edge objects".into());
            };
            if items.is_empty() {
                return Err("\"changes\" must not be empty".into());
            }
            let mut changes = Vec::with_capacity(items.len());
            for item in items {
                let Json::Obj(f) = item else {
                    return Err("each change must be an object".into());
                };
                check_keys(f, &["u", "v", "weight"])?;
                let u = as_index(f, "u")?;
                let v = as_index(f, "v")?;
                let weight = match obj_get(f, "weight") {
                    None | Some(Json::Null) => None,
                    Some(Json::Num(x)) => Some(*x),
                    Some(_) => return Err("\"weight\" must be an integer or null".into()),
                };
                changes.push(EdgeChange { u, v, weight });
            }
            Ok(ServeRequest::Update { id, changes })
        }
        "stats" => {
            check_keys(&fields, &["op", "id"])?;
            Ok(ServeRequest::Stats {
                id: as_id(&fields)?,
            })
        }
        "shutdown" => {
            check_keys(&fields, &["op", "id"])?;
            Ok(ServeRequest::Shutdown {
                id: as_id(&fields)?,
            })
        }
        other => Err(format!("unknown op: \"{other}\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{floyd_warshall, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(n: usize, seed: u64, row_cache: Option<usize>) -> (QueryEngine, WeightMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
        let adj = g.adjacency_matrix();
        let oracle = PathOracle::build(&adj);
        let fw = floyd_warshall(&adj).unwrap();
        (QueryEngine::from_tables(g, oracle, row_cache), fw)
    }

    #[test]
    fn parse_round_trips_every_op() {
        assert_eq!(
            parse_request("{\"op\":\"dist\",\"id\":1,\"u\":0,\"v\":5}"),
            Ok(ServeRequest::Dist {
                id: Some(1),
                u: 0,
                v: 5
            })
        );
        assert_eq!(
            parse_request("{\"op\":\"path\",\"u\":2,\"v\":3}"),
            Ok(ServeRequest::Path {
                id: None,
                u: 2,
                v: 3
            })
        );
        assert_eq!(
            parse_request(
                "{\"op\":\"update\",\"id\":-4,\"changes\":[{\"u\":0,\"v\":1,\"weight\":-2},{\"u\":1,\"v\":2}]}"
            ),
            Ok(ServeRequest::Update {
                id: Some(-4),
                changes: vec![
                    EdgeChange {
                        u: 0,
                        v: 1,
                        weight: Some(-2)
                    },
                    EdgeChange {
                        u: 1,
                        v: 2,
                        weight: None
                    }
                ]
            })
        );
        assert_eq!(
            parse_request(" {\"op\":\"stats\"} "),
            Ok(ServeRequest::Stats { id: None })
        );
        assert_eq!(
            parse_request("{\"op\":\"shutdown\",\"id\":9}"),
            Ok(ServeRequest::Shutdown { id: Some(9) })
        );
    }

    #[test]
    fn parse_rejects_malformed_lines_with_messages() {
        for (line, needle) in [
            ("", "end of line"),
            ("not json", "malformed literal"),
            ("[1,2]", "must be a JSON object"),
            ("{\"op\":\"dist\",\"u\":0}", "missing field \"v\""),
            ("{\"op\":\"dist\",\"u\":-1,\"v\":0}", "nonnegative"),
            ("{\"op\":\"teleport\"}", "unknown op"),
            ("{\"op\":\"dist\",\"u\":0,\"v\":1,\"w\":2}", "unknown field"),
            ("{\"op\":\"dist\",\"u\":0,\"v\":1} extra", "trailing"),
            ("{\"op\":\"update\",\"changes\":[]}", "must not be empty"),
            ("{\"op\":\"dist\",\"u\":1.5,\"v\":0}", "integers"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line:?}: {err}");
        }
    }

    #[test]
    fn dense_engine_answers_from_the_matrix() {
        let (mut eng, fw) = engine(8, 11, None);
        assert_eq!(eng.mode(), "full");
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(eng.dist(u, v).unwrap(), fw[(u, v)], "({u},{v})");
            }
        }
        assert!(eng.dist(0, 99).is_err());
        assert_eq!(eng.stats().row_misses, 0);
    }

    #[test]
    fn row_mode_recomputes_evicted_rows_exactly() {
        let (mut eng, fw) = engine(10, 12, Some(2));
        assert_eq!(eng.mode(), "rows");
        // Sweep sources far beyond the 2-row budget, twice.
        for _ in 0..2 {
            for u in 0..10 {
                for v in 0..10 {
                    assert_eq!(eng.dist(u, v).unwrap(), fw[(u, v)], "({u},{v})");
                }
            }
        }
        assert!(eng.stats().row_evictions > 0, "eviction must have happened");
        assert!(eng.stats().row_misses > 0);
        assert!(eng.stats().row_hits > 0);
    }

    #[test]
    fn paths_carry_their_advertised_weight() {
        for row_cache in [None, Some(3)] {
            let (mut eng, fw) = engine(9, 13, row_cache);
            let g = eng.graph().clone();
            for u in 0..9 {
                for v in 0..9 {
                    match eng.path(u, v).unwrap() {
                        Some((d, p)) => {
                            assert_eq!(d, fw[(u, v)]);
                            assert_eq!(p.first(), Some(&u));
                            assert_eq!(p.last(), Some(&v));
                            if u != v {
                                let w = qcc_graph::path_weight(&g, &p).expect("real hops");
                                assert_eq!(ExtWeight::from(w), d, "({u},{v})");
                            }
                        }
                        None => assert_eq!(fw[(u, v)], ExtWeight::PosInf),
                    }
                }
            }
        }
    }

    #[test]
    fn decrease_update_repairs_with_one_certified_product() {
        let (mut eng, _) = engine(9, 14, None);
        let (u, v, w) = eng.graph().arcs().next().expect("an arc");
        // A one-step decrease on an existing arc: repair must certify
        // (single changed edge ⇒ candidate is exact), unless it creates a
        // negative cycle — seed 14 does not.
        let method = eng
            .update(&[EdgeChange {
                u,
                v,
                weight: Some(w - 1),
            }])
            .unwrap();
        assert_eq!(method, UpdateMethod::DeltaRepair);
        assert_eq!(eng.stats().delta_repairs, 1);
        let fw = floyd_warshall(&eng.graph().adjacency_matrix()).unwrap();
        for a in 0..9 {
            for b in 0..9 {
                assert_eq!(eng.dist(a, b).unwrap(), fw[(a, b)], "({a},{b})");
            }
        }
    }

    #[test]
    fn increase_and_removal_take_the_recompute_path() {
        let (mut eng, _) = engine(9, 15, None);
        let (u, v, w) = eng.graph().arcs().next().expect("an arc");
        assert_eq!(
            eng.update(&[EdgeChange {
                u,
                v,
                weight: Some(w + 5)
            }])
            .unwrap(),
            UpdateMethod::Recompute
        );
        let (u2, v2, _) = eng.graph().arcs().next().expect("an arc");
        assert_eq!(
            eng.update(&[EdgeChange {
                u: u2,
                v: v2,
                weight: None
            }])
            .unwrap(),
            UpdateMethod::Recompute
        );
        assert_eq!(eng.stats().full_recomputes, 2);
        let fw = floyd_warshall(&eng.graph().adjacency_matrix()).unwrap();
        for a in 0..9 {
            for b in 0..9 {
                assert_eq!(eng.dist(a, b).unwrap(), fw[(a, b)]);
            }
        }
    }

    #[test]
    fn negative_cycle_updates_are_rejected_and_state_survives() {
        let (mut eng, fw) = engine(8, 16, None);
        // Find a reachable pair and close a violently negative cycle.
        let (u, v) = fw
            .entries()
            .find(|&(i, j, &x)| i != j && x.is_finite())
            .map(|(i, j, _)| (i, j))
            .expect("reachable pair");
        let err = eng
            .update(&[EdgeChange {
                u: v,
                v: u,
                weight: Some(-1_000_000),
            }])
            .unwrap_err();
        assert!(err.contains("negative cycle"), "{err}");
        // Graph reverted, tables intact.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(eng.dist(a, b).unwrap(), fw[(a, b)]);
            }
        }
        assert_eq!(eng.stats().updates, 0);
    }

    #[test]
    fn noop_update_keeps_tables_and_witnesses() {
        let (mut eng, _) = engine(8, 17, None);
        let (u, v, w) = eng.graph().arcs().next().expect("an arc");
        assert_eq!(
            eng.update(&[EdgeChange {
                u,
                v,
                weight: Some(w)
            }])
            .unwrap(),
            UpdateMethod::Noop
        );
        assert!(eng.oracle.is_some(), "noop must not drop the oracle");
    }

    #[test]
    fn batch_reorders_reads_but_answers_in_request_order() {
        let (mut eng, fw) = engine(8, 18, Some(1));
        let reqs: Vec<Result<ServeRequest, String>> = vec![
            Ok(ServeRequest::Dist {
                id: Some(1),
                u: 7,
                v: 0,
            }),
            Ok(ServeRequest::Dist {
                id: Some(2),
                u: 0,
                v: 7,
            }),
            Ok(ServeRequest::Dist {
                id: Some(3),
                u: 7,
                v: 1,
            }),
            Err("bad line".into()),
            Ok(ServeRequest::Stats { id: Some(4) }),
            Ok(ServeRequest::Shutdown { id: Some(5) }),
        ];
        let out = eng.answer_batch(&reqs);
        assert!(out.shutdown);
        assert_eq!(out.responses.len(), 6);
        assert!(out.responses[0].contains("\"id\":1"));
        assert!(out.responses[1].contains("\"id\":2"));
        assert!(out.responses[3].contains("\"ok\":false"));
        assert!(out.responses[4].contains("\"op\":\"stats\""));
        assert!(out.responses[5].contains("\"op\":\"shutdown\""));
        // Coalescing: sources {7, 0, 7} answered in sorted order {0, 7, 7}.
        // Row 0 was seeded at load, row 7 is fetched once and then reused —
        // a single miss even with a 1-row budget.
        assert_eq!(eng.stats().row_misses, 1);
        assert_eq!(eng.stats().row_hits, 2);
        assert_eq!(eng.stats().row_evictions, 1);
        // Spot-check a value against the oracle matrix.
        let expect = match fw[(7, 0)] {
            ExtWeight::Finite(x) => format!("\"dist\":{x}"),
            _ => "\"dist\":null".into(),
        };
        assert!(out.responses[0].contains(&expect), "{}", out.responses[0]);
    }

    #[test]
    fn ready_line_reports_mode_and_load() {
        let (eng, _) = engine(6, 19, None);
        let line = eng.ready_line();
        assert!(line.contains("\"op\":\"ready\""), "{line}");
        assert!(line.contains("\"n\":6"), "{line}");
        assert!(line.contains("\"mode\":\"full\""), "{line}");
        assert!(line.contains("\"verified\":null"), "{line}");
        // The banner itself must parse as a JSON object.
        assert!(Reader::new(&line).value().is_ok());
    }

    #[test]
    fn responses_escape_error_text() {
        let line = render_error(Some(3), "bad \"quote\" and \\ backslash\n");
        assert!(line.contains("\\\"quote\\\""), "{line}");
        assert!(line.contains("\\\\ backslash\\n"), "{line}");
        assert!(Reader::new(&line).value().is_ok(), "{line}");
    }

    #[test]
    fn load_runs_the_driver_plan() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = random_reweighted_digraph(8, 0.5, 6, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let cfg = EngineConfig {
            plan: LoadPlan::Driver(Box::new(DriverConfig {
                algorithm: crate::apsp::ApspAlgorithm::NaiveBroadcast,
                ..DriverConfig::default()
            })),
            params: Params::paper(),
            row_cache: None,
        };
        let mut eng = QueryEngine::load(g, &cfg, &mut rng, None).unwrap();
        assert_eq!(eng.load_report().verified, Some(true));
        assert!(eng.load_report().rounds > 0);
        for u in 0..8 {
            for v in 0..8 {
                assert_eq!(eng.dist(u, v).unwrap(), fw[(u, v)]);
            }
        }
        // No witnesses from the driver: paths come from parent rows.
        let (d, p) = eng
            .path(
                fw.entries()
                    .find(|&(i, j, &x)| i != j && x.is_finite())
                    .map(|(i, _, _)| i)
                    .unwrap(),
                fw.entries()
                    .find(|&(i, j, &x)| i != j && x.is_finite())
                    .map(|(_, j, _)| j)
                    .unwrap(),
            )
            .unwrap()
            .expect("reachable");
        assert!(p.len() >= 2);
        assert!(d.is_finite());
    }

    #[test]
    fn load_runs_the_witnessed_plan() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = random_reweighted_digraph(7, 0.5, 5, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let cfg = EngineConfig {
            plan: LoadPlan::Witnessed {
                backend: SearchBackend::Classical,
            },
            params: Params::paper(),
            row_cache: None,
        };
        let mut eng = QueryEngine::load(g, &cfg, &mut rng, None).unwrap();
        assert!(eng.oracle.is_some());
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(eng.dist(u, v).unwrap(), fw[(u, v)]);
            }
        }
    }
}
