//! Approximate APSP by weight quantization: ablating the `log W` factor.
//!
//! The exact pipeline pays `O(log M)` `FindEdges` calls per distance
//! product (Proposition 2's binary search), with `M` up to `nW` — that is
//! the `log W` in Theorem 1. The classic scaling observation is that
//! *quantizing* the weights — rounding each arc up to a multiple of `q`
//! and dividing through — shrinks the searched magnitude from `W` to
//! `W/q` while adding at most `q` per arc, i.e. `(n−1)·q` per distance.
//! Choosing `q = ⌈εW/n⌉` caps the binary-search depth at
//! `O(log(n/ε))` *independent of `W`*, at the price of an additive error
//! `≤ εW` (a `(1+ε)`-approximation whenever distances are `Ω(W)`, as in
//! the dense random instances the approximate literature targets).
//!
//! This module implements quantization on top of the exact distributed
//! pipeline and measures the call-count/error trade (experiment E15).

use crate::apsp::ApspAlgorithm;
use crate::distance_product::distributed_distance_product;
use crate::params::Params;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_graph::{DiGraph, ExtWeight, WeightMatrix};
use rand::Rng;

/// Result of a quantized APSP run.
#[derive(Clone, Debug)]
pub struct QuantizedApspReport {
    /// Approximate distances: `d ≤ d̃ ≤ d + (n−1)·q` per reachable pair.
    pub distances: WeightMatrix,
    /// Rounds on the physical network.
    pub rounds: u64,
    /// Distance products performed.
    pub products: u32,
    /// Total `FindEdges` calls (the quantity quantization shrinks).
    pub find_edges_calls: u32,
    /// The quantum `q` actually used.
    pub quantum: i64,
}

/// Rounds every finite entry up to the next multiple of `q` and divides
/// by `q` (the quantized matrix the pipeline runs on).
///
/// # Panics
///
/// Panics if `q <= 0` or any finite entry is negative (quantization is a
/// positive-weights technique).
pub fn quantize_weights(m: &WeightMatrix, q: i64) -> WeightMatrix {
    assert!(q > 0, "quantum must be positive");
    WeightMatrix::from_fn(m.n(), |i, j| match m[(i, j)] {
        ExtWeight::Finite(x) => {
            assert!(x >= 0, "quantization requires nonnegative weights");
            ExtWeight::Finite(x.div_euclid(q) + i64::from(x.rem_euclid(q) != 0))
        }
        other => other,
    })
}

/// APSP with weights quantized to multiples of `q`, through the exact
/// distributed pipeline on the divided weights.
///
/// Guarantee: `d(u,v) ≤ d̃(u,v) ≤ d(u,v) + (n−1)·q` for every reachable
/// pair, and reachability is preserved exactly.
///
/// # Errors
///
/// Propagates pipeline errors.
///
/// # Panics
///
/// Panics if `q <= 0` or the graph has a negative arc.
pub fn quantized_apsp<R: Rng>(
    g: &DiGraph,
    q: i64,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
) -> Result<QuantizedApspReport, ApspError> {
    assert!(q > 0);
    assert!(
        g.arcs().all(|(_, _, w)| w >= 0),
        "quantization requires nonnegative weights"
    );
    let n = g.n();
    let mut current = quantize_weights(&g.adjacency_matrix(), q);
    let mut rounds = 0u64;
    let mut products = 0u32;
    let mut calls = 0u32;
    let mut exponent: u64 = 1;
    while exponent < (n.max(2) as u64) - 1 {
        let report = distributed_distance_product(&current, &current, params, backend, rng)?;
        rounds += report.physical_rounds();
        products += 1;
        calls += report.find_edges_calls;
        current = report.product;
        exponent *= 2;
    }
    // scale back to original units
    let distances = WeightMatrix::from_fn(n, |i, j| match current[(i, j)] {
        ExtWeight::Finite(x) => ExtWeight::Finite(x * q),
        other => other,
    });
    Ok(QuantizedApspReport {
        distances,
        rounds,
        products,
        find_edges_calls: calls,
        quantum: q,
    })
}

/// Convenience: the quantum achieving additive error `≤ ε·W` on an
/// `n`-vertex graph with weights `≤ W`: `q = max(1, ⌈εW/n⌉)`.
pub fn quantum_for_epsilon(n: usize, w_max: u64, epsilon: f64) -> i64 {
    assert!(epsilon > 0.0);
    ((epsilon * w_max as f64 / n.max(1) as f64).ceil() as i64).max(1)
}

/// Verifies the additive guarantee of a quantized distance matrix against
/// the exact one; returns the maximum observed additive error.
///
/// # Panics
///
/// Panics if an approximate entry undershoots the exact distance or
/// disagrees on reachability.
pub fn max_additive_error(exact: &WeightMatrix, approx: &WeightMatrix) -> i64 {
    assert_eq!(exact.n(), approx.n());
    let mut worst = 0i64;
    for (i, j, &e) in exact.entries() {
        let a = approx[(i, j)];
        match (e, a) {
            (ExtWeight::Finite(ev), ExtWeight::Finite(av)) => {
                assert!(
                    av >= ev,
                    "approximation undershot at ({i},{j}): {av} < {ev}"
                );
                worst = worst.max(av - ev);
            }
            (ExtWeight::PosInf, ExtWeight::PosInf) => {}
            other => panic!("reachability mismatch at ({i},{j}): {other:?}"),
        }
    }
    worst
}

/// Exact APSP report for comparison, run through the same backend (helper
/// for the E15 experiment).
pub fn exact_reference<R: Rng>(
    g: &DiGraph,
    params: Params,
    rng: &mut R,
) -> Result<crate::apsp::ApspReport, ApspError> {
    crate::apsp::apsp(g, params, ApspAlgorithm::ClassicalTriangle, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{floyd_warshall, random_nonneg_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantize_rounds_up_to_multiples() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, 7);
        g.add_arc(1, 2, 10);
        let qm = quantize_weights(&g.adjacency_matrix(), 5);
        assert_eq!(qm[(0, 1)], ExtWeight::from(2)); // ceil(7/5)
        assert_eq!(qm[(1, 2)], ExtWeight::from(2)); // 10/5
        assert_eq!(qm[(0, 2)], ExtWeight::PosInf);
        assert_eq!(qm[(0, 0)], ExtWeight::from(0));
    }

    #[test]
    fn additive_error_respects_the_bound() {
        let mut rng = StdRng::seed_from_u64(901);
        let g = random_nonneg_digraph(9, 0.5, 200, &mut rng);
        let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
        for &q in &[1i64, 5, 25, 100] {
            let report =
                quantized_apsp(&g, q, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
            let err = max_additive_error(&exact, &report.distances);
            assert!(err <= (9 - 1) * q, "q = {q}: error {err}");
        }
    }

    #[test]
    fn q_one_is_exact() {
        let mut rng = StdRng::seed_from_u64(902);
        let g = random_nonneg_digraph(8, 0.5, 30, &mut rng);
        let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report =
            quantized_apsp(&g, 1, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        assert_eq!(report.distances, exact);
    }

    #[test]
    fn coarser_quantum_uses_fewer_find_edges_calls() {
        let mut rng = StdRng::seed_from_u64(903);
        let g = random_nonneg_digraph(8, 0.6, 4000, &mut rng);
        let fine =
            quantized_apsp(&g, 1, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        let coarse =
            quantized_apsp(&g, 512, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        assert!(
            coarse.find_edges_calls < fine.find_edges_calls / 2,
            "coarse {} vs fine {}",
            coarse.find_edges_calls,
            fine.find_edges_calls
        );
    }

    #[test]
    fn epsilon_helper_scales_inversely_with_n() {
        assert_eq!(quantum_for_epsilon(10, 1000, 0.1), 10);
        assert_eq!(quantum_for_epsilon(100, 1000, 0.1), 1);
        assert!(quantum_for_epsilon(4, 10, 0.01) >= 1);
    }

    #[test]
    fn unreachable_pairs_stay_unreachable() {
        let mut g = DiGraph::new(5);
        g.add_arc(0, 1, 3);
        g.add_arc(1, 2, 4);
        let mut rng = StdRng::seed_from_u64(904);
        let report =
            quantized_apsp(&g, 2, Params::paper(), SearchBackend::Classical, &mut rng).unwrap();
        assert_eq!(report.distances[(3, 4)], ExtWeight::PosInf);
        assert!(report.distances[(0, 2)].is_finite());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_weights_are_rejected() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, 1, -2);
        let mut rng = StdRng::seed_from_u64(905);
        let _ = quantized_apsp(&g, 2, Params::paper(), SearchBackend::Classical, &mut rng);
    }
}
