//! Human-readable round-accounting reports.
//!
//! The simulator's [`qcc_congest::Metrics`] records a flat list of named
//! phases; algorithms in this crate label their phases hierarchically
//! (`compute-pairs/step1-gather`, `step3/alpha0/eval-queries`, …). This
//! module groups those labels into a breakdown that examples and the
//! experiment harness print alongside their results.

use qcc_congest::Metrics;
use std::collections::BTreeMap;
use std::fmt;

/// A grouped round breakdown: rounds and traffic per top-level phase group
/// (the label prefix before the first `/`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundBreakdown {
    groups: BTreeMap<String, GroupStats>,
    total_rounds: u64,
}

/// Aggregated statistics of one phase group.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Rounds consumed by the group.
    pub rounds: u64,
    /// Messages transmitted.
    pub messages: u64,
    /// Bits transmitted.
    pub bits: u64,
    /// Number of phases merged into the group.
    pub phases: u64,
}

impl RoundBreakdown {
    /// Groups the metrics' phases by their top-level label component.
    ///
    /// # Examples
    ///
    /// ```
    /// use qcc_apsp::RoundBreakdown;
    /// use qcc_congest::Metrics;
    ///
    /// let mut m = Metrics::new();
    /// m.begin_phase("step3/alpha0/eval");
    /// m.record_exchange(4, 10, 100, 50, 60, 70);
    /// m.begin_phase("step3/alpha1/eval");
    /// m.record_exchange(2, 5, 50, 25, 30, 35);
    /// let b = RoundBreakdown::from_metrics(&m);
    /// assert_eq!(b.group("step3").unwrap().rounds, 6);
    /// assert_eq!(b.total_rounds(), 6);
    /// ```
    pub fn from_metrics(metrics: &Metrics) -> Self {
        let mut groups: BTreeMap<String, GroupStats> = BTreeMap::new();
        for phase in metrics.phases() {
            let group = phase
                .label
                .split('/')
                .next()
                .unwrap_or("(unlabelled)")
                .to_owned();
            let entry = groups.entry(group).or_default();
            entry.rounds += phase.rounds;
            entry.messages += phase.messages;
            entry.bits += phase.bits;
            entry.phases += 1;
        }
        RoundBreakdown {
            groups,
            total_rounds: metrics.total_rounds(),
        }
    }

    /// Statistics of one group, if present.
    pub fn group(&self, name: &str) -> Option<&GroupStats> {
        self.groups.get(name)
    }

    /// Iterates over `(group name, stats)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &GroupStats)> {
        self.groups.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total rounds across all groups.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }
}

impl fmt::Display for RoundBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<28} {:>10} {:>12} {:>14}",
            "phase group", "rounds", "messages", "bits"
        )?;
        for (name, stats) in &self.groups {
            writeln!(
                f,
                "{:<28} {:>10} {:>12} {:>14}",
                name, stats.rounds, stats.messages, stats.bits
            )?;
        }
        writeln!(f, "{:<28} {:>10}", "TOTAL", self.total_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new();
        m.begin_phase("compute-pairs/step1-gather");
        m.record_exchange(8, 100, 1000, 10, 10, 10);
        m.begin_phase("compute-pairs/step2-requests");
        m.record_exchange(2, 50, 500, 10, 10, 10);
        m.begin_phase("identify-class/broadcast");
        m.record_exchange(3, 30, 300, 10, 10, 10);
        m.begin_phase("step3/alpha0/eval-queries");
        m.record_exchange(1, 20, 200, 10, 10, 10);
        m
    }

    #[test]
    fn groups_merge_by_prefix() {
        let b = RoundBreakdown::from_metrics(&sample_metrics());
        assert_eq!(b.group("compute-pairs").unwrap().rounds, 10);
        assert_eq!(b.group("compute-pairs").unwrap().phases, 2);
        assert_eq!(b.group("identify-class").unwrap().rounds, 3);
        assert_eq!(b.group("step3").unwrap().rounds, 1);
        assert_eq!(b.total_rounds(), 14);
    }

    #[test]
    fn display_lists_every_group_and_the_total() {
        let b = RoundBreakdown::from_metrics(&sample_metrics());
        let s = b.to_string();
        assert!(s.contains("compute-pairs"));
        assert!(s.contains("identify-class"));
        assert!(s.contains("step3"));
        assert!(s.contains("TOTAL"));
        assert!(s.contains("14"));
    }

    #[test]
    fn empty_metrics_produce_an_empty_breakdown() {
        let b = RoundBreakdown::from_metrics(&Metrics::new());
        assert_eq!(b.total_rounds(), 0);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let b = RoundBreakdown::from_metrics(&sample_metrics());
        let names: Vec<&str> = b.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
