//! # qcc-apsp — quantum distributed APSP in the CONGEST-CLIQUE model
//!
//! Reproduction of *"Quantum Distributed Algorithm for the All-Pairs
//! Shortest Path Problem in the CONGEST-CLIQUE Model"* (Izumi & Le Gall,
//! PODC 2019): the `O~(n^{1/4} log W)`-round quantum APSP algorithm, every
//! reduction it rests on, and the classical baselines it is measured
//! against — all running on the bit-accounted network simulator of
//! [`qcc_congest`] with the exact quantum-search simulation of
//! [`qcc_quantum`].
//!
//! ## The reduction chain (paper → modules)
//!
//! | Paper | Module |
//! |---|---|
//! | Theorem 1: APSP in `O~(n^{1/4} log W)` rounds | [`mod@apsp`] |
//! | Proposition 3: APSP → distance products | [`mod@apsp`] |
//! | Proposition 2: distance product → `FindEdges` | [`distance_product`] |
//! | Proposition 1: `FindEdges` → promise version | [`mod@find_edges`] |
//! | Theorem 2 / Figure 1: `ComputePairs` | [`mod@compute_pairs`] |
//! | Figure 2: `IdentifyClass` | [`identify_class`] |
//! | Figures 4–5: evaluation procedures | [`eval_procedure`] |
//! | Lemma 2: the `Λ_x` covering | [`lambda`] |
//!
//! ## Quickstart
//!
//! ```
//! use qcc_apsp::{compute_pairs, PairSet, Params, SearchBackend};
//! use qcc_congest::Clique;
//! use qcc_graph::book_graph;
//! use rand::SeedableRng;
//!
//! let g = book_graph(16, 3);
//! let s = PairSet::all_pairs(16);
//! let mut net = Clique::new(16)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let report = compute_pairs(&g, &s, Params::paper(), SearchBackend::Quantum, &mut net, &mut rng)?;
//! println!("found {} pairs in {} rounds", report.found.len(), report.rounds);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Wire payloads are self-describing tuples; naming each would add a layer
// of indirection without information.
#![allow(clippy::type_complexity)]

pub mod compute_pairs;
mod error;
pub mod eval_procedure;
pub mod find_edges;
pub mod gather;
pub mod identify_class;
mod instance;
pub mod lambda;
mod params;
mod problem;
mod sampling;
pub mod step3;
mod wire;

pub use compute_pairs::{compute_pairs, ComputePairsReport, MAX_STAGE_ATTEMPTS};
pub use error::ApspError;
pub use find_edges::{find_edges, find_edges_instrumented, FindEdgesReport, LoopIterationStats};
pub use instance::Instance;
pub use lambda::{
    build_deterministic_cover, build_lambda_cover, build_lambda_cover_with_retry, KeptPair,
    LambdaAttempt, LambdaCover,
};
pub use params::Params;
pub use problem::{promise_violation, reference_find_edges, PairSet};
pub use sampling::sample_indices;
pub use step3::{FoundWitness, SearchBackend, Step3Output, Step3Stats};
pub use wire::{pair_bits, weight_bits, Wire};

pub mod distance_product;
pub use distance_product::{
    distributed_distance_product, distributed_distance_product_configured,
    distributed_distance_product_traced, DistanceProductReport,
};

pub mod apsp;
pub mod baselines;
pub use apsp::{apsp, apsp_configured, apsp_traced, ApspAlgorithm, ApspReport};
pub use baselines::{
    dolev_find_edges, naive_broadcast_apsp, naive_broadcast_apsp_configured,
    naive_broadcast_apsp_traced, naive_broadcast_apsp_with_threads, semiring_apsp,
    semiring_apsp_configured, semiring_apsp_traced, semiring_apsp_with_threads,
    semiring_distance_product, semiring_distance_product_with_threads,
};

pub mod driver;
pub use driver::{apsp_driver, AttemptRecord, DriverConfig, DriverReport, FallbackPolicy};

pub mod transport_apsp;
pub use transport_apsp::{
    gossip_apsp, GossipApspConfig, GossipApspReport, GossipAttempt, TransportKind,
};

pub mod extremum;
pub use extremum::{
    classical_extremum_scan, diameter_of, distance_params, eccentricities, network_extremum,
    radius_of, DistanceParam, DistanceParamReport, ExtremumBackend, ExtremumConfig,
    NetworkExtremumOutcome, SearchAttempt,
};

pub mod apsp_paths;
pub use apsp_paths::{
    apsp_with_paths, apsp_with_paths_traced, distributed_witnessed_product,
    distributed_witnessed_product_traced, ApspPathsReport, WitnessedProductReport,
};

pub mod gamma_count;
pub use gamma_count::{quantum_gamma_count, GammaCountReport};

mod report;
pub mod sssp;
pub use report::{GroupStats, RoundBreakdown};
pub use sssp::{sssp, sssp_with_paths, SsspReport};

pub mod approx;
pub use approx::{
    max_additive_error, quantize_weights, quantized_apsp, quantum_for_epsilon, QuantizedApspReport,
};

pub mod serve;
pub use serve::{
    parse_request, BatchOutput, EdgeChange, EngineConfig, LoadPlan, LoadReport, QueryEngine,
    ServeRequest, ServeStats, UpdateMethod,
};
