//! Tunable constants of the paper's algorithms.
//!
//! The paper fixes constants for its asymptotic analysis (`Γ ≤ 90 log n`,
//! sampling rate `10 log n / √n`, list bound `800·2^α √n log n`, …). At
//! laptop-scale `n` these make many probabilities exceed 1 and many caps
//! exceed the whole universe — technically correct, but they collapse the
//! interesting behaviour (everything is sampled, nothing is ever
//! rejected). [`Params`] therefore carries every constant explicitly with
//! two presets:
//!
//! * [`Params::paper`] — the literal constants, used by the analytic-bound
//!   tests and by any run that wants the exact guarantees;
//! * [`Params::scaled`] — the same functional forms with constants shrunk
//!   so that `n ∈ {16 … 625}` exercises sampling, aborts, classes and load
//!   balancing the way large `n` would.
//!
//! Every experiment records which preset it ran (see `EXPERIMENTS.md`).

/// All numeric constants of Sections 3–5, as explicit fields.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// `Γ(u,v) ≤ promise_factor · log₂ n` is the FindEdgesWithPromise
    /// promise (paper: 90).
    pub promise_factor: f64,
    /// Λ_x sampling probability is `lambda_rate · log₂ n / √n` (paper: 10).
    pub lambda_rate: f64,
    /// Well-balancedness cap: `|{v : {u,v} ∈ Λ_x}| ≤ balance_factor ·
    /// n^{1/4} · log₂ n` (paper: 100).
    pub balance_factor: f64,
    /// IdentifyClass sampling probability is `identify_rate · log₂ n / n`
    /// (paper: 10).
    pub identify_rate: f64,
    /// IdentifyClass aborts if any `|Λ(u)| > identify_abort · log₂ n`
    /// (paper: 20).
    pub identify_abort: f64,
    /// Class thresholds: `c_uvw` is the smallest `c` with
    /// `d_uvw < class_threshold · 2^c · log₂ n` (paper: 10).
    pub class_threshold: f64,
    /// Evaluation list bound: `|L^k_w| ≤ list_bound · 2^α · √n · log₂ n`
    /// (paper: 800).
    pub list_bound: f64,
    /// Duplication denominator of Figure 5: `y ∈ [2^α / (dup_denominator ·
    /// log₂ n)]` (paper: 720).
    pub dup_denominator: f64,
    /// Proposition 1 sampling probability is
    /// `√(prop1_base · 2^i · log₂ n / n)` (paper: 60).
    pub prop1_base: f64,
    /// Multi-search repetitions; `None` selects the analytic target
    /// `repetitions_for_target(m)` of `qcc-quantum`.
    pub search_repetitions: Option<u64>,
    /// Host worker threads for the local (non-charged) kernels — tiled
    /// min-plus products, reference oracles, oracle censuses. `None`
    /// defers to the `QCC_THREADS` environment variable, then to the
    /// machine's available parallelism (see [`qcc_perf::resolve_threads`]).
    /// This is purely a host-performance knob: charged round counts never
    /// depend on it.
    pub threads: Option<usize>,
}

impl Params {
    /// The literal constants of the paper.
    pub fn paper() -> Self {
        Params {
            promise_factor: 90.0,
            lambda_rate: 10.0,
            balance_factor: 100.0,
            identify_rate: 10.0,
            identify_abort: 20.0,
            class_threshold: 10.0,
            list_bound: 800.0,
            dup_denominator: 720.0,
            prop1_base: 60.0,
            search_repetitions: None,
            threads: None,
        }
    }

    /// Scaled-down constants that exhibit the paper's behaviour at
    /// laptop-scale `n` (sampling probabilities strictly below 1, caps
    /// strictly below the universe) while preserving every functional form.
    pub fn scaled() -> Self {
        Params {
            promise_factor: 4.0,
            // Coverage (Lemma 2 (ii)) needs p·√n ≳ 3 ln n; below n ≈ 1000
            // this clamps p to 1 for any admissible constant — the same
            // regime the paper's own constants are in at these sizes.
            lambda_rate: 3.0,
            balance_factor: 4.0,
            identify_rate: 2.0,
            identify_abort: 8.0,
            class_threshold: 1.0,
            list_bound: 8.0,
            dup_denominator: 1.0,
            prop1_base: 1.0,
            search_repetitions: Some(24),
            threads: None,
        }
    }

    /// The resolved host worker count for local kernels: the [`threads`]
    /// override when set, else `QCC_THREADS`, else available parallelism.
    ///
    /// [`threads`]: Params::threads
    pub fn worker_threads(&self) -> usize {
        qcc_perf::resolve_threads(self.threads)
    }

    /// `log₂ n`, floored at 1 so constants never vanish.
    pub fn log_n(n: usize) -> f64 {
        (n.max(2) as f64).log2()
    }

    /// The promise threshold `promise_factor · log₂ n` (Γ cap).
    pub fn promise_bound(&self, n: usize) -> f64 {
        self.promise_factor * Self::log_n(n)
    }

    /// Λ_x per-pair sampling probability, clamped to `[0, 1]`.
    pub fn lambda_probability(&self, n: usize) -> f64 {
        (self.lambda_rate * Self::log_n(n) / (n as f64).sqrt()).clamp(0.0, 1.0)
    }

    /// Well-balancedness cap per vertex of the coarse block.
    pub fn balance_cap(&self, n: usize) -> f64 {
        self.balance_factor * (n as f64).powf(0.25) * Self::log_n(n)
    }

    /// IdentifyClass per-neighbor sampling probability, clamped to `[0, 1]`.
    pub fn identify_probability(&self, n: usize) -> f64 {
        (self.identify_rate * Self::log_n(n) / n as f64).clamp(0.0, 1.0)
    }

    /// IdentifyClass abort threshold on `|Λ(u)|`.
    pub fn identify_abort_bound(&self, n: usize) -> f64 {
        self.identify_abort * Self::log_n(n)
    }

    /// The class boundary `class_threshold · 2^c · log₂ n`.
    pub fn class_boundary(&self, n: usize, c: u32) -> f64 {
        self.class_threshold * 2f64.powi(c as i32) * Self::log_n(n)
    }

    /// The evaluation list bound `list_bound · 2^α · √n · log₂ n`.
    pub fn list_cap(&self, n: usize, alpha: u32) -> f64 {
        self.list_bound * 2f64.powi(alpha as i32) * (n as f64).sqrt() * Self::log_n(n)
    }

    /// Figure 5 duplication count `max(1, ⌊2^α / (dup_denominator · log₂ n)⌋)`.
    pub fn dup_count(&self, n: usize, alpha: u32) -> usize {
        let d = 2f64.powi(alpha as i32) / (self.dup_denominator * Self::log_n(n));
        (d.floor() as usize).max(1)
    }

    /// Proposition 1 edge-sampling probability at loop iteration `i`,
    /// clamped to `[0, 1]`.
    pub fn prop1_probability(&self, n: usize, i: u32) -> f64 {
        (self.prop1_base * 2f64.powi(i as i32) * Self::log_n(n) / n as f64)
            .sqrt()
            .clamp(0.0, 1.0)
    }

    /// Whether the Proposition 1 loop continues at iteration `i`
    /// (`prop1_base · 2^i · log₂ n ≤ n`).
    pub fn prop1_continues(&self, n: usize, i: u32) -> bool {
        self.prop1_base * 2f64.powi(i as i32) * Self::log_n(n) <= n as f64
    }
}

impl Default for Params {
    /// Defaults to the scaled preset (the one meaningful at testable `n`).
    fn default() -> Self {
        Params::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_the_text() {
        let p = Params::paper();
        assert_eq!(p.promise_factor, 90.0);
        assert_eq!(p.lambda_rate, 10.0);
        assert_eq!(p.balance_factor, 100.0);
        assert_eq!(p.identify_abort, 20.0);
        assert_eq!(p.list_bound, 800.0);
        assert_eq!(p.dup_denominator, 720.0);
        assert_eq!(p.prop1_base, 60.0);
    }

    #[test]
    fn probabilities_are_clamped() {
        let p = Params::paper();
        // at n = 16 the paper's Λ rate exceeds 1 and must clamp
        assert_eq!(p.lambda_probability(16), 1.0);
        // at large n it is a genuine probability
        assert!(p.lambda_probability(1 << 20) < 1.0);
        let s = Params::scaled();
        // the scaled rate leaves the clamped regime much earlier
        assert!(s.lambda_probability(1 << 12) < 1.0);
        assert!(s.lambda_probability(1 << 12) > p.lambda_probability(1 << 12) / 10.0);
    }

    #[test]
    fn scaled_preset_exercises_sampling_at_small_n() {
        let s = Params::scaled();
        for &n in &[16usize, 81, 256, 625] {
            // IdentifyClass and Proposition 1 sampling are genuinely
            // probabilistic at laptop scale with the scaled constants.
            assert!(s.identify_probability(n) < 1.0, "n = {n}");
            assert!(s.prop1_probability(n, 0) < 1.0, "n = {n}");
            // the balance cap admits the p = 1 regime (every vertex can
            // appear with a whole coarse block of partners) …
            let block = (n as f64).powf(0.75);
            assert!(s.balance_cap(n) >= block, "n = {n}");
        }
        // … while still binding well below the universe at larger n.
        assert!(s.balance_cap(1 << 16) < (1 << 16) as f64);
    }

    #[test]
    fn class_boundaries_double() {
        let p = Params::paper();
        assert_eq!(p.class_boundary(256, 3), 2.0 * p.class_boundary(256, 2));
    }

    #[test]
    fn dup_count_is_at_least_one_and_grows_with_alpha() {
        let p = Params::paper();
        assert_eq!(p.dup_count(256, 0), 1);
        // 2^20 / (720·8) = huge only for large alpha
        assert!(p.dup_count(256, 20) > 1);
        let s = Params::scaled();
        assert!(s.dup_count(256, 4) >= s.dup_count(256, 0));
    }

    #[test]
    fn prop1_loop_terminates() {
        let p = Params::paper();
        let n = 1 << 16;
        let mut i = 0;
        while p.prop1_continues(n, i) {
            i += 1;
            assert!(i < 64, "loop must exit");
        }
        // roughly log2(n / (60 log n)) iterations
        assert!(i >= 1);
    }

    #[test]
    fn default_is_scaled() {
        assert_eq!(Params::default(), Params::scaled());
    }

    #[test]
    fn worker_threads_honours_explicit_override() {
        let mut p = Params::scaled();
        assert!(p.threads.is_none());
        assert!(p.worker_threads() >= 1);
        p.threads = Some(3);
        assert_eq!(p.worker_threads(), 3);
    }
}
