//! Error types of the algorithm crate.

use qcc_congest::CongestError;
use std::error::Error;
use std::fmt;

/// Errors raised by the distributed APSP stack.
#[derive(Clone, Debug, PartialEq)]
pub enum ApspError {
    /// A network-level error (bad addressing); indicates a bug in the
    /// simulated algorithm, never expected on valid inputs.
    Congest(CongestError),
    /// A randomized stage aborted repeatedly (the paper's protocols abort
    /// on unlucky samples with probability `O(1/n)`; we retry a bounded
    /// number of times before giving up).
    StageAborted {
        /// Which stage kept aborting.
        stage: &'static str,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The input graph contains a negative cycle, so APSP is undefined.
    NegativeCycle,
    /// Matrix dimensions (or graph sizes) disagree.
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// An internal invariant of the algorithm was violated at runtime —
    /// typically because injected faults corrupted intermediate state that
    /// a reliable run could never produce.
    Internal {
        /// What went wrong, in one line.
        context: String,
    },
    /// The Las-Vegas driver exhausted its attempt budget without producing
    /// a matrix that passes the distributed verification certificate.
    VerificationFailed {
        /// Total attempts made (including any classical fallback).
        attempts: u32,
    },
    /// An error that interrupted a run after rounds had already been
    /// charged. Wrapping preserves the cost of the failed work so callers
    /// (the driver, the CLI) can account for it honestly.
    Faulted {
        /// Rounds charged before the failure.
        rounds: u64,
        /// The underlying failure.
        source: Box<ApspError>,
    },
}

impl ApspError {
    /// Wraps `source` with the rounds its failed run already charged.
    /// Flattens nesting: re-wrapping a [`ApspError::Faulted`] accumulates
    /// rounds instead of stacking boxes.
    #[must_use]
    pub fn faulted(rounds: u64, source: ApspError) -> ApspError {
        match source {
            ApspError::Faulted {
                rounds: inner,
                source,
            } => ApspError::Faulted {
                rounds: rounds.max(inner),
                source,
            },
            other => ApspError::Faulted {
                rounds,
                source: Box::new(other),
            },
        }
    }

    /// Rounds charged by the failed run, if tracked.
    #[must_use]
    pub fn rounds_charged(&self) -> u64 {
        match self {
            ApspError::Faulted { rounds, .. } => *rounds,
            _ => 0,
        }
    }

    /// True for failures that a fresh attempt with new randomness can
    /// plausibly avoid: injected faults that broke through the envelope and
    /// unlucky randomized-stage aborts. Addressing bugs, bad inputs, and
    /// verification exhaustion are not retryable.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        match self {
            ApspError::Congest(
                CongestError::DeliveryFailed { .. }
                | CongestError::NodeCrashed { .. }
                | CongestError::DecodeFailed { .. },
            ) => true,
            ApspError::StageAborted { .. } => true,
            ApspError::Internal { .. } => true,
            ApspError::Faulted { source, .. } => source.is_retryable(),
            _ => false,
        }
    }
}

impl fmt::Display for ApspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApspError::Congest(e) => write!(f, "network error: {e}"),
            ApspError::StageAborted { stage, attempts } => {
                write!(f, "stage '{stage}' aborted {attempts} times")
            }
            ApspError::NegativeCycle => write!(f, "graph contains a negative cycle"),
            ApspError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            ApspError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
            ApspError::VerificationFailed { attempts } => {
                write!(
                    f,
                    "no APSP attempt passed verification after {attempts} attempts"
                )
            }
            ApspError::Faulted { rounds, source } => {
                write!(f, "{source} (after charging {rounds} rounds)")
            }
        }
    }
}

impl Error for ApspError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApspError::Congest(e) => Some(e),
            ApspError::Faulted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<CongestError> for ApspError {
    fn from(e: CongestError) -> Self {
        ApspError::Congest(e)
    }
}

impl From<qcc_graph::NegativeCycleError> for ApspError {
    fn from(_: qcc_graph::NegativeCycleError) -> Self {
        ApspError::NegativeCycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_congest::NodeId;

    #[test]
    fn displays_are_informative() {
        let e = ApspError::StageAborted {
            stage: "lambda",
            attempts: 3,
        };
        assert!(e.to_string().contains("lambda"));
        let e = ApspError::DimensionMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
    }

    #[test]
    fn congest_errors_convert_and_chain() {
        let inner = CongestError::UnknownNode {
            node: NodeId::new(7),
            n: 4,
        };
        let e: ApspError = inner.clone().into();
        assert_eq!(e, ApspError::Congest(inner));
        assert!(e.source().is_some());
    }

    #[test]
    fn negative_cycle_converts() {
        let e: ApspError = qcc_graph::NegativeCycleError.into();
        assert_eq!(e, ApspError::NegativeCycle);
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ApspError>();
    }

    #[test]
    fn faulted_wrapping_flattens_and_tracks_rounds() {
        let base = ApspError::Congest(CongestError::DeliveryFailed {
            phase: "x".into(),
            undelivered: 1,
            attempts: 9,
        });
        let once = ApspError::faulted(10, base.clone());
        assert_eq!(once.rounds_charged(), 10);
        let twice = ApspError::faulted(25, once);
        assert_eq!(twice.rounds_charged(), 25);
        match &twice {
            ApspError::Faulted { source, .. } => assert_eq!(**source, base),
            other => panic!("expected flat Faulted, got {other:?}"),
        }
        assert!(twice.source().is_some());
    }

    #[test]
    fn retryability_classifies_fault_and_logic_errors() {
        let delivery = ApspError::Congest(CongestError::DeliveryFailed {
            phase: "p".into(),
            undelivered: 2,
            attempts: 3,
        });
        assert!(delivery.is_retryable());
        assert!(ApspError::faulted(5, delivery).is_retryable());
        assert!(ApspError::StageAborted {
            stage: "lambda",
            attempts: 3
        }
        .is_retryable());
        assert!(ApspError::Internal {
            context: "mangled".into()
        }
        .is_retryable());
        assert!(!ApspError::NegativeCycle.is_retryable());
        assert!(!ApspError::VerificationFailed { attempts: 4 }.is_retryable());
        assert!(!ApspError::Congest(CongestError::EmptyNetwork).is_retryable());
        // Coded gossip decode failures are luck-of-the-faults — retryable;
        // a disconnected topology never improves with a reseed.
        assert!(ApspError::Congest(CongestError::DecodeFailed {
            phase: "gossip".into(),
            undecoded: 1,
            rounds: 9,
        })
        .is_retryable());
        assert!(
            !ApspError::Congest(CongestError::Partitioned { reachable: 1, n: 2 }).is_retryable()
        );
    }
}
