//! Error types of the algorithm crate.

use qcc_congest::CongestError;
use std::error::Error;
use std::fmt;

/// Errors raised by the distributed APSP stack.
#[derive(Clone, Debug, PartialEq)]
pub enum ApspError {
    /// A network-level error (bad addressing); indicates a bug in the
    /// simulated algorithm, never expected on valid inputs.
    Congest(CongestError),
    /// A randomized stage aborted repeatedly (the paper's protocols abort
    /// on unlucky samples with probability `O(1/n)`; we retry a bounded
    /// number of times before giving up).
    StageAborted {
        /// Which stage kept aborting.
        stage: &'static str,
        /// How many attempts were made.
        attempts: u32,
    },
    /// The input graph contains a negative cycle, so APSP is undefined.
    NegativeCycle,
    /// Matrix dimensions (or graph sizes) disagree.
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
}

impl fmt::Display for ApspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApspError::Congest(e) => write!(f, "network error: {e}"),
            ApspError::StageAborted { stage, attempts } => {
                write!(f, "stage '{stage}' aborted {attempts} times")
            }
            ApspError::NegativeCycle => write!(f, "graph contains a negative cycle"),
            ApspError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl Error for ApspError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApspError::Congest(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CongestError> for ApspError {
    fn from(e: CongestError) -> Self {
        ApspError::Congest(e)
    }
}

impl From<qcc_graph::NegativeCycleError> for ApspError {
    fn from(_: qcc_graph::NegativeCycleError) -> Self {
        ApspError::NegativeCycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_congest::NodeId;

    #[test]
    fn displays_are_informative() {
        let e = ApspError::StageAborted {
            stage: "lambda",
            attempts: 3,
        };
        assert!(e.to_string().contains("lambda"));
        let e = ApspError::DimensionMismatch {
            expected: 4,
            actual: 5,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('5'));
    }

    #[test]
    fn congest_errors_convert_and_chain() {
        let inner = CongestError::UnknownNode {
            node: NodeId::new(7),
            n: 4,
        };
        let e: ApspError = inner.clone().into();
        assert_eq!(e, ApspError::Congest(inner));
        assert!(e.source().is_some());
    }

    #[test]
    fn negative_cycle_converts() {
        let e: ApspError = qcc_graph::NegativeCycleError.into();
        assert_eq!(e, ApspError::NegativeCycle);
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ApspError>();
    }
}
