//! Distributed quantum triangle *counting* (an extension of the paper).
//!
//! `FindEdgesWithPromise` only detects `Γ(u, v) > 0`; its Proposition-1
//! wrapper additionally needs the promise `Γ = O(log n)`. A natural
//! extension of the toolbox — and the quantum analogue of the classical
//! sampling estimator inside `IdentifyClass` — is *quantum counting*:
//! amplitude estimation over the apex domain returns `Γ(u, v)` to within
//! `O(√Γ)` using `O(√(Γ·n))`-ish oracle queries instead of the classical
//! `n`.
//!
//! The implementation runs one amplitude estimation per queried pair, all
//! pairs in parallel: each Grover-iterate application is realized as one
//! joint network exchange (query pair + weight out to an apex owner, one
//! bit back), so the round bill is measured, not assumed.

use crate::problem::PairSet;
use crate::wire::{pair_bits, weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, Envelope, NodeId};
use qcc_graph::UGraph;
use qcc_quantum::AmplitudeEstimator;
use rand::Rng;

/// Result of a distributed quantum Γ-counting run.
#[derive(Clone, Debug)]
pub struct GammaCountReport {
    /// Per queried pair: `(u, v, estimated Γ, true Γ)`.
    pub estimates: Vec<(usize, usize, u64, usize)>,
    /// Rounds consumed.
    pub rounds: u64,
    /// Oracle queries per pair (each backed by a real exchange).
    pub oracle_queries: u64,
}

impl GammaCountReport {
    /// Largest absolute counting error across pairs.
    pub fn max_error(&self) -> u64 {
        self.estimates
            .iter()
            .map(|&(_, _, est, truth)| est.abs_diff(truth as u64))
            .max()
            .unwrap_or(0)
    }
}

/// Estimates `Γ(u, v)` for every pair of `pairs` by parallel amplitude
/// estimation with an `m_bits` register and `repetitions`-fold median
/// amplification.
///
/// # Errors
///
/// Propagates simulator-level errors.
///
/// # Panics
///
/// Panics if any queried pair is not an edge of `g`.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{quantum_gamma_count, PairSet};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
/// use rand::SeedableRng;
///
/// let g = book_graph(16, 5);
/// let mut pairs = PairSet::new();
/// pairs.insert(0, 1);
/// let mut net = Clique::new(16)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let report = quantum_gamma_count(&g, &pairs, 8, 5, &mut net, &mut rng)?;
/// assert_eq!(report.estimates[0].2, 5); // Γ(0, 1) = 5 counted exactly
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn quantum_gamma_count<R: Rng>(
    g: &UGraph,
    pairs: &PairSet,
    m_bits: u32,
    repetitions: u32,
    net: &mut Clique,
    rng: &mut R,
) -> Result<GammaCountReport, ApspError> {
    let n = g.n();
    if net.n() != n {
        return Err(ApspError::DimensionMismatch {
            expected: n,
            actual: net.n(),
        });
    }
    let rounds_before = net.rounds();
    let query_list: Vec<(usize, usize, i64)> = pairs
        .iter()
        .map(|(u, v)| {
            let w = g
                .weight(u, v)
                .finite()
                .unwrap_or_else(|| panic!("pair ({u}, {v}) is not an edge"));
            (u, v, w)
        })
        .collect();

    // Census (local, free): the exact Γ per pair, for exact QAE statistics.
    let truths: Vec<usize> = query_list.iter().map(|&(u, v, _)| g.gamma(u, v)).collect();

    let pb = pair_bits(n);
    let wb = weight_bits(
        g.edges()
            .map(|(_, _, w)| w.unsigned_abs())
            .max()
            .unwrap_or(1),
    );
    let m = 1u64 << m_bits;
    let queries_per_pair = repetitions as u64 * (m - 1);

    // Every Grover-iterate application of every repetition is one joint
    // exchange: each pair sends its query to a sampled apex owner and gets
    // one bit back. (The quantum register is superposed over apexes; the
    // sampled apex is the executed proxy that exercises the network.)
    net.begin_phase("gamma-count/oracle");
    for _ in 0..queries_per_pair {
        let mut sends: Vec<Envelope<Wire<(usize, usize, i64)>>> = Vec::new();
        for &(u, v, w) in &query_list {
            let apex = rng.gen_range(0..n);
            sends.push(Envelope::new(
                NodeId::new(u),
                NodeId::new(apex),
                Wire::new((u, v, w), pb + wb),
            ));
        }
        let boxes = net.exchange(sends)?;
        let mut replies: Vec<Envelope<Wire<bool>>> = Vec::new();
        for host in NodeId::all(n) {
            for (asker, msg) in boxes.of(host) {
                let (u, v, _w) = msg.value;
                // apex owner checks its two incident weights locally
                let answer = g.is_negative_triangle(u, v, host.index());
                replies.push(Envelope::new(host, *asker, Wire::new(answer, 1)));
            }
        }
        net.exchange(replies)?;
    }

    // Exact QAE outcome per pair (median of repetitions).
    let mut estimates = Vec::with_capacity(query_list.len());
    for (&(u, v, _), &truth) in query_list.iter().zip(&truths) {
        let est = AmplitudeEstimator::new(n, truth);
        let mut samples: Vec<f64> = (0..repetitions)
            .map(|_| est.estimate(m_bits, rng).count_estimate)
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = samples[samples.len() / 2].round().max(0.0) as u64;
        estimates.push((u, v, median, truth));
    }

    Ok(GammaCountReport {
        estimates,
        rounds: net.rounds() - rounds_before,
        oracle_queries: queries_per_pair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{book_graph, congestion_hotspot, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_book_spines_exactly() {
        let g = book_graph(16, 7);
        let mut pairs = PairSet::new();
        pairs.insert(0, 1);
        pairs.insert(0, 2);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(701);
        let report = quantum_gamma_count(&g, &pairs, 8, 5, &mut net, &mut rng).unwrap();
        let by_pair: std::collections::HashMap<(usize, usize), u64> = report
            .estimates
            .iter()
            .map(|&(u, v, est, _)| ((u, v), est))
            .collect();
        assert_eq!(by_pair[&(0, 1)], 7);
        assert_eq!(by_pair[&(0, 2)], 1);
        assert!(report.rounds > 0);
    }

    #[test]
    fn estimates_track_truth_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(702);
        let g = random_ugraph(16, 0.6, 4, &mut rng);
        let pairs: PairSet = g.edges().map(|(u, v, _)| (u, v)).take(10).collect();
        let mut net = Clique::new(16).unwrap();
        let report = quantum_gamma_count(&g, &pairs, 9, 5, &mut net, &mut rng).unwrap();
        assert!(report.max_error() <= 1, "max error {}", report.max_error());
    }

    #[test]
    fn hotspot_heavy_pairs_are_counted() {
        let (g, base_pairs) = congestion_hotspot(32, 2, 20);
        let pairs: PairSet = base_pairs.iter().copied().collect();
        let mut net = Clique::new(32).unwrap();
        let mut rng = StdRng::seed_from_u64(703);
        let report = quantum_gamma_count(&g, &pairs, 10, 5, &mut net, &mut rng).unwrap();
        for &(_, _, est, truth) in &report.estimates {
            assert_eq!(truth, 20);
            assert!(est.abs_diff(20) <= 1, "estimated {est}");
        }
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn non_edges_are_rejected() {
        let g = book_graph(16, 2);
        let mut pairs = PairSet::new();
        pairs.insert(10, 11);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(704);
        let _ = quantum_gamma_count(&g, &pairs, 6, 3, &mut net, &mut rng);
    }

    #[test]
    fn wrong_network_size_is_an_error() {
        let g = book_graph(16, 2);
        let pairs = PairSet::new();
        let mut net = Clique::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(705);
        let err = quantum_gamma_count(&g, &pairs, 6, 3, &mut net, &mut rng).unwrap_err();
        assert!(matches!(err, ApspError::DimensionMismatch { .. }));
    }

    #[test]
    fn rounds_scale_with_register_size() {
        let g = book_graph(16, 3);
        let mut pairs = PairSet::new();
        pairs.insert(0, 1);
        let mut rng = StdRng::seed_from_u64(706);
        let mut rounds = Vec::new();
        for bits in [5u32, 7] {
            let mut net = Clique::new(16).unwrap();
            let report = quantum_gamma_count(&g, &pairs, bits, 3, &mut net, &mut rng).unwrap();
            rounds.push(report.rounds);
        }
        // 4x the register: about 4x the exchanges
        assert!(rounds[1] > 3 * rounds[0], "rounds {rounds:?}");
    }
}
