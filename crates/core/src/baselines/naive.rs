//! The trivial APSP baseline: broadcast everything, solve locally.

use crate::apsp::{ApspAlgorithm, ApspReport};
use crate::wire::{weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, NetConfig, TraceSink};
use qcc_graph::{floyd_warshall_with_threads, DiGraph};

/// Solves APSP by having every node broadcast its full adjacency row and
/// then running Floyd–Warshall locally.
///
/// Costs `Θ(n · w / B) = Θ(n)` rounds (each node pushes `n` weights of `w`
/// bits over `B`-bit links): the upper bound every sub-linear algorithm is
/// compared against.
///
/// # Errors
///
/// Returns [`ApspError::NegativeCycle`] if the graph has a negative cycle.
///
/// # Examples
///
/// ```
/// use qcc_apsp::naive_broadcast_apsp;
/// use qcc_graph::{DiGraph, ExtWeight};
///
/// let mut g = DiGraph::new(4);
/// g.add_arc(0, 1, 2);
/// g.add_arc(1, 2, 3);
/// let report = naive_broadcast_apsp(&g)?;
/// assert_eq!(report.distances[(0, 2)], ExtWeight::from(5));
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn naive_broadcast_apsp(g: &DiGraph) -> Result<ApspReport, ApspError> {
    naive_broadcast_apsp_with_threads(g, qcc_perf::resolve_threads(None))
}

/// [`naive_broadcast_apsp`] with an explicit worker count for the local
/// Floyd–Warshall solve (host wall-clock only; rounds are unaffected).
///
/// # Errors
///
/// Returns [`ApspError::NegativeCycle`] if the graph has a negative cycle.
pub fn naive_broadcast_apsp_with_threads(
    g: &DiGraph,
    threads: usize,
) -> Result<ApspReport, ApspError> {
    naive_broadcast_apsp_traced(g, threads, None)
}

/// [`naive_broadcast_apsp_with_threads`] with an optional NDJSON trace
/// sink attached to the internal network. Round charges are byte-identical
/// with and without a sink.
///
/// # Errors
///
/// Same as [`naive_broadcast_apsp`].
pub fn naive_broadcast_apsp_traced(
    g: &DiGraph,
    threads: usize,
    trace: Option<&TraceSink>,
) -> Result<ApspReport, ApspError> {
    naive_broadcast_apsp_configured(g, threads, trace, &NetConfig::default())
}

/// [`naive_broadcast_apsp_traced`] with a network configuration: the
/// internal `Clique` is armed with `netcfg`'s fault plan and
/// reliable-delivery envelope before the gossip.
///
/// # Errors
///
/// Same as [`naive_broadcast_apsp`]; additionally, injected faults that
/// break through the envelope surface as [`ApspError::Faulted`].
pub fn naive_broadcast_apsp_configured(
    g: &DiGraph,
    threads: usize,
    trace: Option<&TraceSink>,
    netcfg: &NetConfig,
) -> Result<ApspReport, ApspError> {
    let n = g.n();
    let mut net = Clique::new(n)?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    net.push_span("apsp");
    net.begin_phase("naive/broadcast-rows");
    let wb = weight_bits(g.weight_magnitude());
    // Each node's item list: its full out-row (one weight per other vertex,
    // absent arcs included — the row is dense information).
    let items: Vec<Vec<Wire<(usize, Option<i64>)>>> = (0..n)
        .map(|u| {
            (0..n)
                .filter(|&v| v != u)
                .map(|v| Wire::new((v, g.weight(u, v).finite()), wb))
                .collect()
        })
        .collect();
    let views = match net.gossip(items) {
        Ok(views) => views,
        Err(e) => {
            net.close_all_spans();
            return Err(ApspError::faulted(net.rounds(), e.into()));
        }
    };

    // Every node now reconstructs the full graph; verify on node 0's view.
    let mut reconstructed = DiGraph::new(n);
    for (origin, msg) in &views[0] {
        let (v, w) = msg.value;
        if let Some(w) = w {
            reconstructed.add_arc(origin.index(), v, w);
        }
    }
    // On a faulty network without the envelope the gossip can silently lose
    // rows; the reconstruction invariant only holds on reliable runs.
    debug_assert!(
        net.fault_plan().is_some() || &reconstructed == g,
        "gossip must reconstruct the graph"
    );

    net.close_all_spans();
    let distances = floyd_warshall_with_threads(&reconstructed.adjacency_matrix(), threads)?;
    Ok(ApspReport {
        distances,
        rounds: net.rounds(),
        products: 0,
        algorithm: ApspAlgorithm::NaiveBroadcast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{floyd_warshall, random_reweighted_digraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(121);
        let g = random_reweighted_digraph(12, 0.5, 6, &mut rng);
        let report = naive_broadcast_apsp(&g).unwrap();
        assert_eq!(
            report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
        assert_eq!(report.algorithm, ApspAlgorithm::NaiveBroadcast);
    }

    #[test]
    fn rounds_scale_linearly_with_n() {
        let mut rng = StdRng::seed_from_u64(122);
        let g16 = random_reweighted_digraph(16, 0.5, 6, &mut rng);
        let g64 = random_reweighted_digraph(64, 0.5, 6, &mut rng);
        let r16 = naive_broadcast_apsp(&g16).unwrap().rounds;
        let r64 = naive_broadcast_apsp(&g64).unwrap().rounds;
        // 4x the nodes: roughly 4x the rounds (bandwidth grows by log factor)
        assert!(r64 >= 2 * r16, "r16 = {r16}, r64 = {r64}");
    }

    #[test]
    fn negative_cycle_is_detected() {
        let mut g = DiGraph::new(4);
        g.add_arc(0, 1, -2);
        g.add_arc(1, 0, 1);
        assert_eq!(
            naive_broadcast_apsp(&g).unwrap_err(),
            ApspError::NegativeCycle
        );
    }
}
