//! Classical baselines the quantum algorithm is measured against.
//!
//! * [`naive_broadcast_apsp`] — every node broadcasts its adjacency row and
//!   solves locally: `O(n)` rounds, the trivial upper bound.
//! * [`semiring_apsp`] — repeated squaring over the distributed semiring
//!   matrix multiplication of Censor-Hillel et al.: `O~(n^{1/3})` rounds,
//!   the classical state of the art the paper's Theorem 1 beats.
//! * [`dolev_find_edges`] — the triangle-listing `FindEdges` of Dolev,
//!   Lenzen & Peled ("Tri, Tri Again"): `O~(n^{1/3})` rounds, the
//!   combinatorial baseline the paper cites for negative-triangle listing.

mod dolev;
mod naive;
mod semiring;

pub use dolev::dolev_find_edges;
pub use naive::{
    naive_broadcast_apsp, naive_broadcast_apsp_configured, naive_broadcast_apsp_traced,
    naive_broadcast_apsp_with_threads,
};
pub use semiring::{
    semiring_apsp, semiring_apsp_configured, semiring_apsp_traced, semiring_apsp_with_threads,
    semiring_distance_product, semiring_distance_product_with_threads,
};
