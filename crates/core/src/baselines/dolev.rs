//! The Dolev–Lenzen–Peled triangle-listing `FindEdges` baseline.
//!
//! "Tri, Tri Again" (DISC 2012) lists **all** triangles in `O~(n^{1/3})`
//! rounds: cut `V` into `b = ⌈n^{1/3}⌉` blocks and assign every unordered
//! block triple `{i, j, k}` (with repetition) to a node, which loads all
//! edges among the three blocks (`O(n^{4/3})` entries, `O(n^{1/3})` rounds
//! by Lemma 1) and checks its triangles locally. The paper notes this
//! combinatorial listing also finds *negative* triangles — unlike the
//! faster algebraic detection algorithms — and therefore yields a
//! classical `FindEdges` matching the `O~(n^{1/3})` APSP bound.

use crate::problem::PairSet;
use crate::wire::{weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, Envelope, NodeId};
use qcc_graph::{Labeling, Partition, UGraph};

/// Result of a triangle-listing `FindEdges` run.
#[derive(Clone, Debug)]
pub struct DolevReport {
    /// Pairs of `S` involved in a negative triangle.
    pub found: PairSet,
    /// Rounds consumed.
    pub rounds: u64,
    /// Block triples processed.
    pub triples: usize,
}

/// Solves `FindEdges` by exhaustive distributed triangle listing.
///
/// Deterministic and promise-free: the classical yardstick for
/// experiments E2 and E9.
///
/// # Errors
///
/// Propagates simulator-level errors.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{dolev_find_edges, PairSet};
/// use qcc_graph::book_graph;
///
/// let g = book_graph(12, 3);
/// let report = dolev_find_edges(&g, &PairSet::all_pairs(12))?;
/// assert!(report.found.contains(0, 1));
/// assert!(report.rounds > 0);
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn dolev_find_edges(g: &UGraph, s: &PairSet) -> Result<DolevReport, ApspError> {
    let n = g.n();
    let mut net = Clique::new(n)?;
    let blocks = cube_root_blocks(n);
    let part = Partition::equal(n, blocks);

    // Unordered block triples with repetition.
    let mut triples: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..blocks {
        for j in i..blocks {
            for k in j..blocks {
                triples.push((i, j, k));
            }
        }
    }
    let labeling = Labeling::new(triples.len(), n);

    // Each vertex owner streams its edge rows (restricted to the triple's
    // blocks) to the triple nodes.
    net.begin_phase("dolev/load-edges");
    let wb = weight_bits(
        g.edges()
            .map(|(_, _, w)| w.unsigned_abs())
            .max()
            .unwrap_or(1),
    );
    let mut sends: Vec<Envelope<Wire<(usize, usize, i64)>>> = Vec::new();
    for (t, &(bi, bj, bk)) in triples.iter().enumerate() {
        let dst = NodeId::new(labeling.node_of(t));
        let members: Vec<usize> = [bi, bj, bk].iter().flat_map(|&b| part.block(b)).collect();
        for (pos, &u) in members.iter().enumerate() {
            for &v in &members[pos + 1..] {
                if u != v {
                    if let Some(w) = g.weight(u, v).finite() {
                        let (a, b) = (u.min(v), u.max(v));
                        sends.push(Envelope::new(
                            NodeId::new(a),
                            dst,
                            Wire::new((a, b, w), crate::wire::pair_bits(n) + wb),
                        ));
                    }
                }
            }
        }
    }
    let boxes = net.route(sends)?;

    // Local listing at each triple node, then a gather of the found pairs.
    net.begin_phase("dolev/report");
    let mut found = PairSet::new();
    for host in NodeId::all(n) {
        // Rebuild this node's local subgraphs per hosted triple.
        let mut local = UGraph::new(n);
        for (_src, msg) in boxes.of(host) {
            let (u, v, w) = msg.value;
            local.add_edge(u, v, w);
        }
        for t in labeling.labels_of(host.index()) {
            let (bi, bj, bk) = triples[t];
            let members: Vec<usize> = [bi, bj, bk].iter().flat_map(|&b| part.block(b)).collect();
            let mut dedup = members.clone();
            dedup.sort_unstable();
            dedup.dedup();
            for (x, &u) in dedup.iter().enumerate() {
                for (y, &v) in dedup.iter().enumerate().skip(x + 1) {
                    if !s.contains(u, v) {
                        continue;
                    }
                    for &w in &dedup[y + 1..] {
                        if local.is_negative_triangle(u, v, w) {
                            found.insert(u, v);
                            if s.contains(u, w) {
                                found.insert(u, w);
                            }
                            if s.contains(v, w) {
                                found.insert(v, w);
                            }
                        }
                    }
                }
            }
        }
    }

    Ok(DolevReport {
        found,
        rounds: net.rounds(),
        triples: triples.len(),
    })
}

fn cube_root_blocks(n: usize) -> usize {
    let mut b = (n as f64).powf(1.0 / 3.0).round() as usize;
    while b.saturating_pow(3) < n {
        b += 1;
    }
    while b > 1 && (b - 1).pow(3) >= n {
        b -= 1;
    }
    b.clamp(1, n.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::reference_find_edges;
    use qcc_graph::{book_graph, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn listing_matches_reference_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(141);
        for trial in 0..5 {
            let g = random_ugraph(14, 0.5, 5, &mut rng);
            let s = PairSet::all_pairs(14);
            let report = dolev_find_edges(&g, &s).unwrap();
            assert_eq!(report.found, reference_find_edges(&g, &s), "trial {trial}");
        }
    }

    #[test]
    fn s_restriction_is_respected() {
        let g = book_graph(12, 3);
        let mut s = PairSet::new();
        s.insert(0, 1);
        let report = dolev_find_edges(&g, &s).unwrap();
        assert!(report.found.contains(0, 1));
        assert_eq!(report.found.len(), 1);
    }

    #[test]
    fn triple_count_is_cubic_in_blocks() {
        let g = random_ugraph(27, 0.3, 3, &mut StdRng::seed_from_u64(142));
        let s = PairSet::all_pairs(27);
        let report = dolev_find_edges(&g, &s).unwrap();
        // b = 3: C(3 + 2, 3) = 10 unordered triples with repetition
        assert_eq!(report.triples, 10);
        assert!(report.rounds > 0);
    }

    #[test]
    fn missed_pair_cannot_happen_because_every_vertex_triple_is_covered() {
        // all-negative complete graph: every pair is in a triangle
        let n = 12;
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, -1);
            }
        }
        let s = PairSet::all_pairs(n);
        let report = dolev_find_edges(&g, &s).unwrap();
        assert_eq!(report.found.len(), n * (n - 1) / 2);
    }
}
