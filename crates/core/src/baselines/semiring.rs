//! Distributed semiring (min-plus) matrix multiplication — the classical
//! `O~(n^{1/3})`-round APSP baseline (Censor-Hillel et al., "Algebraic
//! methods in the congested clique").
//!
//! The work is split over block triples: `[n]` is cut into `b = ⌈n^{1/3}⌉`
//! blocks of `≈ n^{2/3}` rows/columns, and the node labelled `(i, j, k)`
//! computes the partial products `min_{κ ∈ B_k}(A[ρ, κ] + B[κ, γ])` for
//! `ρ ∈ B_i, γ ∈ B_j`. Each node receives `O(n^{4/3})` matrix entries
//! (delivered by Lemma 1 routing in `O(n^{1/3})` rounds) and the partial
//! results are aggregated at the row owners with the same cost. Repeated
//! squaring then gives APSP in `O~(n^{1/3})` rounds — the barrier the
//! paper's quantum algorithm breaks.

use crate::apsp::{ApspAlgorithm, ApspReport};
use crate::wire::{weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, CongestError, Envelope, NetConfig, NodeId, TraceSink};
use qcc_graph::{ExtWeight, Labeling, Partition, WeightMatrix};

/// One distributed min-plus product `A ⋆ B`, charged to `net`.
///
/// # Errors
///
/// * [`ApspError::DimensionMismatch`] if sizes disagree with the network.
/// * Propagated [`CongestError`]s on addressing bugs.
pub fn semiring_distance_product(
    a: &WeightMatrix,
    b: &WeightMatrix,
    net: &mut Clique,
) -> Result<WeightMatrix, ApspError> {
    semiring_distance_product_with_threads(a, b, net, qcc_perf::resolve_threads(None))
}

/// [`semiring_distance_product`] with an explicit worker count for the
/// local per-triple partial products (host wall-clock only; the charged
/// round count is identical for every worker count).
///
/// # Errors
///
/// Same as [`semiring_distance_product`].
pub fn semiring_distance_product_with_threads(
    a: &WeightMatrix,
    b: &WeightMatrix,
    net: &mut Clique,
    threads: usize,
) -> Result<WeightMatrix, ApspError> {
    let n = a.n();
    if b.n() != n {
        return Err(ApspError::DimensionMismatch {
            expected: n,
            actual: b.n(),
        });
    }
    if net.n() != n {
        return Err(ApspError::DimensionMismatch {
            expected: n,
            actual: net.n(),
        });
    }
    let blocks = cube_root_blocks(n);
    let part = Partition::equal(n, blocks);
    let labeling = Labeling::new(blocks * blocks * blocks, n);
    let encode = |i: usize, j: usize, k: usize| (i * blocks + j) * blocks + k;
    let wb = weight_bits(a.max_finite_magnitude_with(b));

    // Phase 1: owners stream row/column segments to the triple nodes.
    net.begin_phase("semiring/distribute");
    let mut sends: Vec<Envelope<Wire<Segment>>> = Vec::new();
    for r in 0..n {
        let bi = part.block_of(r);
        for k in 0..blocks {
            let seg_a: Vec<Option<i64>> = part.block(k).map(|c| a[(r, c)].finite()).collect();
            let bits = wb * seg_a.len() as u64;
            for j in 0..blocks {
                let dst = NodeId::new(labeling.node_of(encode(bi, j, k)));
                sends.push(Envelope::new(
                    NodeId::new(r),
                    dst,
                    Wire::new(
                        Segment {
                            matrix: MatrixSide::A,
                            index: r,
                            block: k,
                            values: seg_a.clone(),
                        },
                        bits,
                    ),
                ));
            }
        }
        // row r of B feeds triples whose k-block contains r
        let bk = part.block_of(r);
        for j in 0..blocks {
            let seg_b: Vec<Option<i64>> = part.block(j).map(|c| b[(r, c)].finite()).collect();
            let bits = wb * seg_b.len() as u64;
            for i in 0..blocks {
                let dst = NodeId::new(labeling.node_of(encode(i, j, bk)));
                sends.push(Envelope::new(
                    NodeId::new(r),
                    dst,
                    Wire::new(
                        Segment {
                            matrix: MatrixSide::B,
                            index: r,
                            block: j,
                            values: seg_b.clone(),
                        },
                        bits,
                    ),
                ));
            }
        }
    }
    let boxes = net.route(sends).map_err(congest)?;

    // Phase 2: local partial products at the triple nodes.
    // partial[(i, j, k)][(ρ offset, γ offset)] lives at node of (i, j, k).
    let partials: Vec<Vec<Option<i64>>> = {
        // Reassemble each triple's A and B tiles from its inbox.
        let mut tile_a: Vec<Vec<Option<i64>>> = vec![Vec::new(); blocks * blocks * blocks];
        let mut tile_b: Vec<Vec<Option<i64>>> = vec![Vec::new(); blocks * blocks * blocks];
        for t in 0..blocks * blocks * blocks {
            let (ti, tj, tk) = ((t / blocks) / blocks, (t / blocks) % blocks, t % blocks);
            tile_a[t] = vec![None; part.block_size(ti) * part.block_size(tk)];
            tile_b[t] = vec![None; part.block_size(tk) * part.block_size(tj)];
        }
        for host in NodeId::all(n) {
            for (_src, msg) in boxes.of(host) {
                let seg = &msg.value;
                match seg.matrix {
                    MatrixSide::A => {
                        // row seg.index of A over columns of block seg.block:
                        // belongs to every triple (block_of(r), *, seg.block)
                        // hosted here — identify by re-deriving.
                        let bi = part.block_of(seg.index);
                        for j in 0..blocks {
                            let t = encode(bi, j, seg.block);
                            if labeling.node_of(t) != host.index() {
                                continue;
                            }
                            let ro = seg.index - part.block(bi).start;
                            let klen = part.block_size(seg.block);
                            for (o, v) in seg.values.iter().enumerate() {
                                tile_a[t][ro * klen + o] = *v;
                            }
                        }
                    }
                    MatrixSide::B => {
                        let bk = part.block_of(seg.index);
                        for i in 0..blocks {
                            let t = encode(i, seg.block, bk);
                            if labeling.node_of(t) != host.index() {
                                continue;
                            }
                            let ko = seg.index - part.block(bk).start;
                            let jlen = part.block_size(seg.block);
                            for (o, v) in seg.values.iter().enumerate() {
                                tile_b[t][ko * jlen + o] = *v;
                            }
                        }
                    }
                }
            }
        }
        // Each triple's partial product is independent: fan the census out
        // over worker threads, results returned in triple order.
        qcc_perf::map_indexed(blocks * blocks * blocks, threads, |t| {
            let (ti, tj, tk) = ((t / blocks) / blocks, (t / blocks) % blocks, t % blocks);
            let (ilen, jlen, klen) = (
                part.block_size(ti),
                part.block_size(tj),
                part.block_size(tk),
            );
            let mut out = vec![None; ilen * jlen];
            for ro in 0..ilen {
                for ko in 0..klen {
                    let Some(av) = tile_a[t][ro * klen + ko] else {
                        continue;
                    };
                    for go in 0..jlen {
                        if let Some(bv) = tile_b[t][ko * jlen + go] {
                            let cand = av + bv;
                            let slot = &mut out[ro * jlen + go];
                            *slot = Some(slot.map_or(cand, |cur: i64| cur.min(cand)));
                        }
                    }
                }
            }
            out
        })
    };

    // Phase 3: aggregate the k-partials at the row owners.
    net.begin_phase("semiring/aggregate");
    let mut sends: Vec<Envelope<Wire<(usize, usize, Option<i64>)>>> = Vec::new();
    for (t, partial) in partials.iter().enumerate() {
        let (ti, tj, _tk) = ((t / blocks) / blocks, (t / blocks) % blocks, t % blocks);
        let src = NodeId::new(labeling.node_of(t));
        let jlen = part.block_size(tj);
        for (ro, r) in part.block(ti).enumerate() {
            for (go, c) in part.block(tj).enumerate() {
                let v = partial[ro * jlen + go];
                if v.is_some() {
                    sends.push(Envelope::new(src, NodeId::new(r), Wire::new((r, c, v), wb)));
                }
            }
        }
    }
    let boxes = net.route(sends).map_err(congest)?;

    let mut c = WeightMatrix::filled(n, ExtWeight::PosInf);
    for host in NodeId::all(n) {
        for (_src, msg) in boxes.of(host) {
            let (r, col, v) = msg.value;
            debug_assert_eq!(r, host.index());
            if let Some(v) = v {
                let cand = ExtWeight::from(v);
                if cand < c[(r, col)] {
                    c[(r, col)] = cand;
                }
            }
        }
    }
    Ok(c)
}

/// APSP by repeated squaring over [`semiring_distance_product`].
///
/// # Errors
///
/// Returns [`ApspError::NegativeCycle`] on negative cycles and propagates
/// network errors.
///
/// # Examples
///
/// ```
/// use qcc_apsp::semiring_apsp;
/// use qcc_graph::{DiGraph, ExtWeight};
///
/// let mut g = DiGraph::new(5);
/// g.add_arc(0, 1, 4);
/// g.add_arc(1, 4, -2);
/// let report = semiring_apsp(&g)?;
/// assert_eq!(report.distances[(0, 4)], ExtWeight::from(2));
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn semiring_apsp(g: &qcc_graph::DiGraph) -> Result<ApspReport, ApspError> {
    semiring_apsp_with_threads(g, qcc_perf::resolve_threads(None))
}

/// [`semiring_apsp`] with an explicit worker count for the local partial
/// products (host wall-clock only; rounds are unaffected).
///
/// # Errors
///
/// Same as [`semiring_apsp`].
pub fn semiring_apsp_with_threads(
    g: &qcc_graph::DiGraph,
    threads: usize,
) -> Result<ApspReport, ApspError> {
    semiring_apsp_traced(g, threads, None)
}

/// [`semiring_apsp_with_threads`] with an optional NDJSON trace sink:
/// the run is wrapped in a root `apsp` span with one `product-k` child per
/// squaring. Round charges are byte-identical with and without a sink.
///
/// # Errors
///
/// Same as [`semiring_apsp`].
pub fn semiring_apsp_traced(
    g: &qcc_graph::DiGraph,
    threads: usize,
    trace: Option<&TraceSink>,
) -> Result<ApspReport, ApspError> {
    semiring_apsp_configured(g, threads, trace, &NetConfig::default())
}

/// [`semiring_apsp_traced`] with a network configuration: the internal
/// `Clique` is armed with `netcfg`'s fault plan and reliable-delivery
/// envelope before any message moves.
///
/// # Errors
///
/// Same as [`semiring_apsp`]; additionally, injected faults that break
/// through the envelope surface as [`ApspError::Faulted`], carrying the
/// rounds the failed run already charged.
pub fn semiring_apsp_configured(
    g: &qcc_graph::DiGraph,
    threads: usize,
    trace: Option<&TraceSink>,
    netcfg: &NetConfig,
) -> Result<ApspReport, ApspError> {
    let n = g.n();
    let mut net = Clique::new(n)?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    net.push_span("apsp");
    let mut current = g.adjacency_matrix();
    let mut products = 0u32;
    let mut exponent: u64 = 1;
    while exponent < (n.max(2) as u64) - 1 {
        net.push_span(&format!("product-{products}"));
        current = match semiring_distance_product_with_threads(
            &current.clone(),
            &current,
            &mut net,
            threads,
        ) {
            Ok(product) => product,
            Err(e) => {
                net.close_all_spans();
                return Err(ApspError::faulted(net.rounds(), e));
            }
        };
        net.pop_span();
        products += 1;
        exponent *= 2;
    }
    net.close_all_spans();
    for i in 0..n {
        if current[(i, i)] < ExtWeight::ZERO {
            return Err(ApspError::NegativeCycle);
        }
    }
    Ok(ApspReport {
        distances: current,
        rounds: net.rounds(),
        products,
        algorithm: ApspAlgorithm::SemiringSquaring,
    })
}

fn cube_root_blocks(n: usize) -> usize {
    let mut b = (n as f64).powf(1.0 / 3.0).round() as usize;
    while b.saturating_pow(3) < n {
        b += 1;
    }
    while b > 1 && (b - 1).pow(3) >= n {
        b -= 1;
    }
    b.clamp(1, n.max(1))
}

fn congest(e: CongestError) -> ApspError {
    ApspError::Congest(e)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum MatrixSide {
    A,
    B,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Segment {
    matrix: MatrixSide,
    index: usize,
    block: usize,
    values: Vec<Option<i64>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{distance_product, floyd_warshall, random_reweighted_digraph, DiGraph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn cube_root_blocks_are_exact_on_cubes() {
        assert_eq!(cube_root_blocks(27), 3);
        assert_eq!(cube_root_blocks(28), 4);
        assert_eq!(cube_root_blocks(1), 1);
        assert_eq!(cube_root_blocks(8), 2);
    }

    #[test]
    fn product_matches_reference() {
        let mut rng = StdRng::seed_from_u64(131);
        for &n in &[5usize, 8, 13] {
            let a = WeightMatrix::from_fn(n, |_, _| {
                if rng.gen_bool(0.8) {
                    ExtWeight::from(rng.gen_range(-9..=9))
                } else {
                    ExtWeight::PosInf
                }
            });
            let b = WeightMatrix::from_fn(n, |_, _| {
                if rng.gen_bool(0.8) {
                    ExtWeight::from(rng.gen_range(-9..=9))
                } else {
                    ExtWeight::PosInf
                }
            });
            let mut net = Clique::new(n).unwrap();
            let c = semiring_distance_product(&a, &b, &mut net).unwrap();
            assert_eq!(c, distance_product(&a, &b), "n = {n}");
            assert!(net.rounds() > 0);
        }
    }

    #[test]
    fn apsp_matches_floyd_warshall() {
        let mut rng = StdRng::seed_from_u64(132);
        let g = random_reweighted_digraph(13, 0.4, 7, &mut rng);
        let report = semiring_apsp(&g).unwrap();
        assert_eq!(
            report.distances,
            floyd_warshall(&g.adjacency_matrix()).unwrap()
        );
        assert_eq!(report.algorithm, ApspAlgorithm::SemiringSquaring);
    }

    #[test]
    fn negative_cycle_is_detected() {
        let mut g = DiGraph::new(5);
        g.add_arc(0, 1, -3);
        g.add_arc(1, 0, 1);
        assert_eq!(semiring_apsp(&g).unwrap_err(), ApspError::NegativeCycle);
    }

    #[test]
    fn per_product_rounds_grow_sublinearly() {
        // Shape check: one semiring product's rounds grow like n^{1/3}
        // (up to log factors), far below linear. A 4x larger instance must
        // cost well under 4x the rounds. (The naive-vs-semiring crossover
        // itself needs larger n and lives in experiment E9.)
        let mut rng = StdRng::seed_from_u64(133);
        let mut rounds_for = |n: usize| {
            let g = random_reweighted_digraph(n, 0.5, 4, &mut rng);
            let a = g.adjacency_matrix();
            let mut net = Clique::new(n).unwrap();
            semiring_distance_product(&a, &a, &mut net).unwrap();
            net.rounds()
        };
        let r16 = rounds_for(16);
        let r64 = rounds_for(64);
        assert!(r64 < 4 * r16, "r16 = {r16}, r64 = {r64}");
    }
}
