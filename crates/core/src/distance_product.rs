//! Distributed distance product via negative triangles (Proposition 2).
//!
//! Vassilevska Williams & Williams: to compute `C = A ⋆ B`, binary-search
//! the threshold matrix `D` of the tripartite graph of
//! [`qcc_graph::build_tripartite`] — the pair `{i, j}` is in a negative
//! triangle iff `C[i, j] < D[i, j]`, so `O(log M)` calls to `FindEdges`
//! (each on the `3n`-vertex tripartite graph) pin down every entry of `C`
//! simultaneously.
//!
//! The tripartite graph has `3n` vertices while the physical network has
//! `n` nodes; as is standard, each physical node simulates three virtual
//! nodes, multiplying round counts by the constant
//! [`DistanceProductReport::simulation_factor`] `= ⌈3n/n⌉² = 9`. The
//! simulator executes on the virtual `Clique(3n)` and reports both counts.

use crate::find_edges::find_edges;
use crate::params::Params;
use crate::problem::PairSet;
use crate::step3::SearchBackend;
use crate::ApspError;
use qcc_congest::{Clique, NetConfig, TraceSink};
use qcc_graph::{build_tripartite, SquareMatrix, WeightMatrix};
use rand::Rng;

/// Result of a distributed distance product.
#[derive(Clone, Debug)]
pub struct DistanceProductReport {
    /// The computed product `A ⋆ B`.
    pub product: WeightMatrix,
    /// Rounds consumed on the virtual `3n`-node network.
    pub virtual_rounds: u64,
    /// Constant factor translating virtual rounds to rounds on the real
    /// `n`-node network (each node simulates 3 virtual nodes: factor 9).
    pub simulation_factor: u64,
    /// Number of `FindEdges` invocations (the `O(log M)` factor).
    pub find_edges_calls: u32,
}

impl DistanceProductReport {
    /// Rounds on the physical `n`-node network.
    pub fn physical_rounds(&self) -> u64 {
        self.virtual_rounds * self.simulation_factor
    }
}

/// Computes `A ⋆ B` with the negative-triangle binary search of
/// Proposition 2, running `FindEdges` with the chosen backend.
///
/// # Errors
///
/// * [`ApspError::DimensionMismatch`] if `A` and `B` differ in size.
/// * Propagated errors from the `FindEdges` runs.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{distributed_distance_product, Params, SearchBackend};
/// use qcc_graph::{distance_product, ExtWeight, WeightMatrix};
/// use rand::SeedableRng;
///
/// let a = WeightMatrix::from_fn(4, |i, j| ExtWeight::from((i as i64) - (j as i64)));
/// let b = WeightMatrix::from_fn(4, |i, j| ExtWeight::from((2 * j) as i64 - (i as i64)));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let report =
///     distributed_distance_product(&a, &b, Params::paper(), SearchBackend::Classical, &mut rng)?;
/// assert_eq!(report.product, distance_product(&a, &b));
/// # Ok::<(), qcc_apsp::ApspError>(())
/// ```
pub fn distributed_distance_product<R: Rng>(
    a: &WeightMatrix,
    b: &WeightMatrix,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
) -> Result<DistanceProductReport, ApspError> {
    distributed_distance_product_traced(a, b, params, backend, rng, None)
}

/// [`distributed_distance_product`] with an optional NDJSON trace sink.
///
/// The internal virtual `Clique(3n)` attaches to `trace`, so every
/// `FindEdges` span and communication call lands in the caller's trace
/// (nested under whatever span the caller has open). Round charges are
/// byte-identical with and without a sink.
///
/// # Errors
///
/// Same as [`distributed_distance_product`].
pub fn distributed_distance_product_traced<R: Rng>(
    a: &WeightMatrix,
    b: &WeightMatrix,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
    trace: Option<&TraceSink>,
) -> Result<DistanceProductReport, ApspError> {
    distributed_distance_product_configured(
        a,
        b,
        params,
        backend,
        rng,
        trace,
        &NetConfig::default(),
    )
}

/// [`distributed_distance_product_traced`] with a network configuration:
/// the internal virtual `Clique(3n)` is armed with `netcfg`'s fault plan
/// and reliable-delivery envelope before any message moves.
///
/// # Errors
///
/// Same as [`distributed_distance_product`]; additionally, injected faults
/// that break through the envelope surface as [`ApspError::Faulted`]
/// wrapping the underlying [`qcc_congest::CongestError`], carrying the
/// physical rounds the failed run already charged.
#[allow(clippy::too_many_arguments)]
pub fn distributed_distance_product_configured<R: Rng>(
    a: &WeightMatrix,
    b: &WeightMatrix,
    params: Params,
    backend: SearchBackend,
    rng: &mut R,
    trace: Option<&TraceSink>,
    netcfg: &NetConfig,
) -> Result<DistanceProductReport, ApspError> {
    if a.n() != b.n() {
        return Err(ApspError::DimensionMismatch {
            expected: a.n(),
            actual: b.n(),
        });
    }
    let n = a.n();
    if n == 0 {
        return Ok(DistanceProductReport {
            product: WeightMatrix::filled(0, qcc_graph::ExtWeight::PosInf),
            virtual_rounds: 0,
            simulation_factor: 9,
            find_edges_calls: 0,
        });
    }
    let m = a.max_finite_magnitude_with(b) as i64;

    // Per-entry binary search state over candidate thresholds t:
    // invariant: C[i,j] < lo is false, C[i,j] < hi is true — where
    // hi = 2M + 2 is the untested "infinity" sentinel (finite entries are
    // ≤ 2M, so failing C < 2M + 1 certifies C = +∞).
    let mut lo = SquareMatrix::filled(n, -2 * m - 1);
    let mut hi = SquareMatrix::filled(n, 2 * m + 2);

    let mut net = Clique::new(3 * n)?;
    if let Some(sink) = trace {
        net.set_trace_sink(sink.clone());
    }
    netcfg.apply(&mut net);
    let layout = qcc_graph::TripartiteLayout::new(n);
    let mut s = PairSet::new();
    for i in 0..n {
        for j in 0..n {
            s.insert(layout.i_vertex(i), layout.j_vertex(j));
        }
    }

    let mut calls = 0;
    loop {
        let open = |lo: &SquareMatrix<i64>, hi: &SquareMatrix<i64>, i: usize, j: usize| {
            hi[(i, j)] - lo[(i, j)] > 1
        };
        if !(0..n).any(|i| (0..n).any(|j| open(&lo, &hi, i, j))) {
            break;
        }
        // Converged entries get D = lo (a certified-false threshold), so
        // they produce no triangles and stay inert.
        let d = SquareMatrix::from_fn(n, |i, j| {
            if open(&lo, &hi, i, j) {
                midpoint(lo[(i, j)], hi[(i, j)])
            } else {
                lo[(i, j)]
            }
        });
        let (graph, layout) = build_tripartite(a, b, &d);
        net.push_span(&format!("distance-product/call{calls}"));
        let report = match find_edges(&graph, &s, params, backend, &mut net, rng) {
            Ok(report) => report,
            Err(e) => {
                // Leave the trace well formed and report the physical
                // rounds this aborted product already charged.
                net.close_all_spans();
                return Err(ApspError::faulted(9 * net.rounds(), e));
            }
        };
        net.pop_span();
        calls += 1;
        for i in 0..n {
            for j in 0..n {
                if !open(&lo, &hi, i, j) {
                    continue;
                }
                let found = report
                    .found
                    .contains(layout.i_vertex(i), layout.j_vertex(j));
                if found {
                    hi[(i, j)] = d[(i, j)];
                } else {
                    lo[(i, j)] = d[(i, j)];
                }
            }
        }
    }

    let product = WeightMatrix::from_fn(n, |i, j| {
        if hi[(i, j)] == 2 * m + 2 {
            qcc_graph::ExtWeight::PosInf
        } else {
            qcc_graph::ExtWeight::from(hi[(i, j)] - 1)
        }
    });

    // Leave the trace well formed: this Clique is dropped on return.
    net.close_all_spans();

    Ok(DistanceProductReport {
        product,
        virtual_rounds: net.rounds(),
        simulation_factor: 9,
        find_edges_calls: calls,
    })
}

fn midpoint(lo: i64, hi: i64) -> i64 {
    lo + (hi - lo) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_graph::{distance_product, ExtWeight};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn w(x: i64) -> ExtWeight {
        ExtWeight::from(x)
    }

    fn random_matrix(n: usize, mag: i64, density: f64, rng: &mut StdRng) -> WeightMatrix {
        use rand::Rng;
        WeightMatrix::from_fn(n, |_, _| {
            if rng.gen_bool(density) {
                w(rng.gen_range(-mag..=mag))
            } else {
                ExtWeight::PosInf
            }
        })
    }

    #[test]
    fn product_matches_reference_classical() {
        let mut rng = StdRng::seed_from_u64(101);
        for trial in 0..2 {
            let a = random_matrix(5, 6, 0.8, &mut rng);
            let b = random_matrix(5, 6, 0.8, &mut rng);
            let report = distributed_distance_product(
                &a,
                &b,
                Params::paper(),
                SearchBackend::Classical,
                &mut rng,
            )
            .unwrap();
            assert_eq!(report.product, distance_product(&a, &b), "trial {trial}");
            assert!(report.virtual_rounds > 0);
            assert_eq!(report.physical_rounds(), 9 * report.virtual_rounds);
        }
    }

    #[test]
    fn product_matches_reference_quantum() {
        let mut rng = StdRng::seed_from_u64(102);
        let a = random_matrix(4, 4, 0.9, &mut rng);
        let b = random_matrix(4, 4, 0.9, &mut rng);
        let report =
            distributed_distance_product(&a, &b, Params::paper(), SearchBackend::Quantum, &mut rng)
                .unwrap();
        assert_eq!(report.product, distance_product(&a, &b));
    }

    #[test]
    fn infinite_entries_are_recovered() {
        // row 1 of A is all +inf: row 1 of the product must be +inf
        let mut rng = StdRng::seed_from_u64(103);
        let mut a = random_matrix(4, 3, 1.0, &mut rng);
        for j in 0..4 {
            a[(1, j)] = ExtWeight::PosInf;
        }
        let b = random_matrix(4, 3, 1.0, &mut rng);
        let report = distributed_distance_product(
            &a,
            &b,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        for j in 0..4 {
            assert_eq!(report.product[(1, j)], ExtWeight::PosInf);
        }
        assert_eq!(report.product, distance_product(&a, &b));
    }

    #[test]
    fn call_count_is_logarithmic_in_magnitude() {
        let mut rng = StdRng::seed_from_u64(104);
        let a4 = random_matrix(3, 4, 1.0, &mut rng);
        let b4 = random_matrix(3, 4, 1.0, &mut rng);
        let r4 = distributed_distance_product(
            &a4,
            &b4,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        let a64 = random_matrix(3, 64, 1.0, &mut rng);
        let b64 = random_matrix(3, 64, 1.0, &mut rng);
        let r64 = distributed_distance_product(
            &a64,
            &b64,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        // range 4M+3: M = 4 -> 19 thresholds (5 calls), M = 64 -> 259 (9 calls)
        assert!(r4.find_edges_calls < r64.find_edges_calls);
        assert!(r64.find_edges_calls <= 10);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = WeightMatrix::filled(3, ExtWeight::PosInf);
        let b = WeightMatrix::filled(4, ExtWeight::PosInf);
        let mut rng = StdRng::seed_from_u64(105);
        let err = distributed_distance_product(
            &a,
            &b,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ApspError::DimensionMismatch {
                expected: 3,
                actual: 4
            }
        );
    }

    #[test]
    fn negative_entries_round_trip() {
        let a = WeightMatrix::from_fn(3, |i, j| w(-(3 * i as i64) - j as i64));
        let b = WeightMatrix::from_fn(3, |i, j| w(-(i as i64) - 2 * j as i64));
        let mut rng = StdRng::seed_from_u64(106);
        let report = distributed_distance_product(
            &a,
            &b,
            Params::paper(),
            SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.product, distance_product(&a, &b));
    }
}
