//! Algorithm `IdentifyClass` (Figure 2) and the class partition `{T_α}`.
//!
//! Step 3 of ComputePairs must know, for every gathering node `(u, v, w)`,
//! roughly how many pairs of `P(u, v) ∩ S` form a negative triangle with an
//! apex in `w` — the quantity `|Δ(u, v; w)|` of Definition 3 — because
//! heavily loaded triples are the congestion hot-spots the evaluation
//! procedure must spread out (Figure 5). Computing `Δ` exactly is too
//! expensive, so `IdentifyClass` estimates it by sampling a public random
//! pair set `R ⊆ S` (each vertex `u` samples each `S`-partner with
//! probability `≈ 10 log n / n`, aborts if it drew more than `≈ 20 log n`,
//! then broadcasts its draws), counting `d_uvw = |Δ ∩ R|` locally, and
//! assigning the *class* `c_uvw` = smallest `c ≥ 0` with
//! `d_uvw < 10·2^c·log n`.
//!
//! Proposition 5: with probability `≥ 1 − 2/n` no abort happens and every
//! triple of class `α > 0` satisfies `2^{α−3}·n ≤ |Δ| ≤ 2^{α+1}·n` (class
//! 0 satisfies `|Δ| ≤ 2n`).

use crate::instance::Instance;
use crate::sampling::sample_indices;
use crate::wire::{pair_bits, weight_bits, Wire};
use qcc_congest::{Clique, CongestError};
use rand::Rng;

/// The class partition produced by `IdentifyClass`.
#[derive(Clone, Debug)]
pub struct ClassAssignment {
    /// `c_uvw` per triple label (indexed like
    /// [`TripleLabeling`](qcc_graph::TripleLabeling)).
    pub class_of: Vec<u32>,
    /// The sampled estimator counts `d_uvw` per triple label.
    pub d: Vec<usize>,
    /// The public sampled pair set `R` (with weights), as `(u, v, f(u,v))`.
    pub r: Vec<(usize, usize, i64)>,
}

impl ClassAssignment {
    /// The largest class in use.
    pub fn max_class(&self) -> u32 {
        self.class_of.iter().copied().max().unwrap_or(0)
    }

    /// `T_α[u, v]`: the fine blocks `w` with `(u, v, w) ∈ T_α`, for the
    /// coarse block pair `(bu, bv)`.
    pub fn t_alpha(&self, inst: &Instance<'_>, bu: usize, bv: usize, alpha: u32) -> Vec<usize> {
        let s = inst.parts.fine.num_blocks();
        (0..s)
            .filter(|&bw| self.class_of[inst.triples.encode(bu, bv, bw)] == alpha)
            .collect()
    }
}

/// Outcome of one `IdentifyClass` attempt.
#[derive(Clone, Debug)]
pub enum ClassAttempt {
    /// Sampling stayed below the abort bound; classes were assigned.
    Assigned(ClassAssignment),
    /// Some vertex drew more than the abort bound and the protocol aborted.
    Aborted {
        /// The over-sampling vertex.
        vertex: usize,
        /// Its draw count.
        observed: usize,
        /// The abort bound.
        bound: f64,
    },
}

/// Runs `IdentifyClass` once (Figure 2).
///
/// # Errors
///
/// Returns a [`CongestError`] only on simulator-level addressing bugs.
pub fn identify_class<R: Rng>(
    inst: &Instance<'_>,
    net: &mut Clique,
    rng: &mut R,
) -> Result<ClassAttempt, CongestError> {
    let n = inst.n();
    let p = inst.params.identify_probability(n);
    let abort_bound = inst.params.identify_abort_bound(n);

    // Step 1: each vertex u samples its S-partners.
    let mut per_vertex: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    let mut flags = vec![false; n];
    let mut violation: Option<(usize, usize)> = None; // (vertex, observed)
    for u in 0..n {
        let partners: Vec<usize> = (0..n)
            .filter(|&v| v != u && inst.s.contains(u, v) && inst.graph.has_edge(u, v))
            .collect();
        let picked = sample_indices(partners.len(), p, rng);
        if picked.len() as f64 > abort_bound {
            flags[u] = true;
            if violation.is_none() {
                violation = Some((u, picked.len()));
            }
        }
        per_vertex[u] = picked
            .into_iter()
            .map(|i| {
                let v = partners[i];
                let w = inst
                    .graph
                    .weight(u, v)
                    .finite()
                    .expect("partners are edges");
                (v, w)
            })
            .collect();
    }
    // Abort consensus: every node must learn the flag before broadcasting.
    net.begin_phase("identify-class/abort-consensus");
    if net.agree_any(&flags)? {
        let (vertex, observed) = violation.expect("flag implies violation");
        return Ok(ClassAttempt::Aborted {
            vertex,
            observed,
            bound: abort_bound,
        });
    }

    // Broadcast every Λ(u) (with weights) to all nodes.
    net.begin_phase("identify-class/broadcast");
    let pb = pair_bits(n);
    let wb = weight_bits(inst.weight_magnitude());
    let items: Vec<Vec<Wire<(usize, i64)>>> = per_vertex
        .iter()
        .map(|list| {
            list.iter()
                .map(|&(v, w)| Wire::new((v, w), pb + wb))
                .collect()
        })
        .collect();
    let views = net.gossip(items)?;

    // Every node now holds the same R; reconstruct it once (all views agree).
    let mut r: Vec<(usize, usize, i64)> = Vec::new();
    for (origin, msg) in &views[0] {
        let (v, w) = msg.value;
        let u = origin.index();
        r.push((u.min(v), u.max(v), w));
    }
    r.sort_unstable();
    r.dedup();

    // Step 2: local class computation at each triple node. A pair of R
    // only contributes to the two labels carrying its coarse block pair,
    // so tally R-side — one apex scan per (pair, fine block) — instead of
    // rescanning all of R at each of the q²·s triple labels.
    let label_count = inst.triples.labeling().label_count();
    let mut class_of = vec![0u32; label_count];
    let mut d = vec![0usize; label_count];
    let fine = inst.parts.fine.num_blocks();
    for &(u, v, _w) in &r {
        let (cu, cv) = (inst.parts.coarse.block_of(u), inst.parts.coarse.block_of(v));
        for bw in 0..fine {
            if inst.has_apex_in_block(u, v, bw) {
                d[inst.triples.encode(cu, cv, bw)] += 1;
                if cu != cv {
                    d[inst.triples.encode(cv, cu, bw)] += 1;
                }
            }
        }
    }
    for (label, &count) in d.iter().enumerate() {
        let mut c = 0u32;
        while count as f64 >= inst.params.class_boundary(n, c) {
            c += 1;
        }
        class_of[label] = c;
    }

    Ok(ClassAttempt::Assigned(ClassAssignment { class_of, d, r }))
}

/// Retries [`identify_class`] until an attempt assigns classes, up to
/// `max_attempts` times.
///
/// # Errors
///
/// Returns [`crate::ApspError::StageAborted`] if every attempt aborted.
///
/// # Examples
///
/// ```
/// use qcc_apsp::identify_class::identify_class_with_retry;
/// use qcc_apsp::{Instance, PairSet, Params};
/// use qcc_congest::Clique;
/// use qcc_graph::UGraph;
/// use rand::SeedableRng;
///
/// let g = UGraph::new(16); // no triangles anywhere
/// let s = PairSet::all_pairs(16);
/// let inst = Instance::new(&g, &s, Params::paper());
/// let mut net = Clique::new(16)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let classes = identify_class_with_retry(&inst, &mut net, 10, &mut rng)?;
/// assert_eq!(classes.max_class(), 0); // everything is light
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn identify_class_with_retry<R: Rng>(
    inst: &Instance<'_>,
    net: &mut Clique,
    max_attempts: u32,
    rng: &mut R,
) -> Result<ClassAssignment, crate::ApspError> {
    for _ in 0..max_attempts {
        match identify_class(inst, net, rng)? {
            ClassAttempt::Assigned(a) => return Ok(a),
            ClassAttempt::Aborted { .. } => continue,
        }
    }
    Err(crate::ApspError::StageAborted {
        stage: "identify-class",
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, congestion_hotspot, random_ugraph, UGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_triangles_means_class_zero_everywhere() {
        let g = UGraph::new(16);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let a = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        assert!(a.class_of.iter().all(|&c| c == 0));
        assert!(a.d.iter().all(|&d| d == 0));
        assert_eq!(a.max_class(), 0);
    }

    #[test]
    fn r_is_a_subset_of_s_edges() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_ugraph(16, 0.6, 4, &mut rng);
        let mut s = PairSet::new();
        for (u, v, _) in g.edges().take(20) {
            s.insert(u, v);
        }
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let a = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        for &(u, v, w) in &a.r {
            assert!(s.contains(u, v));
            assert_eq!(g.weight(u, v).finite(), Some(w));
        }
    }

    #[test]
    fn d_estimates_track_delta_with_full_sampling() {
        // With p clamped to 1, R = all S-edges, so d_uvw = |Δ(u,v;w)| exactly.
        let (g, _) = congestion_hotspot(16, 3, 5);
        let s = PairSet::all_pairs(16);
        // p = 1 with an abort bound that allows everything
        let mut params = Params::paper();
        params.identify_rate = 1e9;
        params.identify_abort = 1e9;
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let a = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            let delta = inst.delta(bu, bv, bw).len();
            assert_eq!(a.d[label], delta, "triple ({bu},{bv},{bw})");
        }
    }

    #[test]
    fn classes_partition_the_fine_blocks() {
        let g = book_graph(16, 5);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(44);
        let a = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        let q = inst.parts.coarse.num_blocks();
        let fine = inst.parts.fine.num_blocks();
        for bu in 0..q {
            for bv in 0..q {
                let mut total = 0;
                for alpha in 0..=a.max_class() {
                    total += a.t_alpha(&inst, bu, bv, alpha).len();
                }
                assert_eq!(total, fine, "block pair ({bu},{bv})");
            }
        }
    }

    #[test]
    fn abort_triggers_on_tiny_bound() {
        let g = book_graph(16, 5);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper(); // p = 1 at n = 16
        params.identify_abort = 0.0;
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(45);
        match identify_class(&inst, &mut net, &mut rng).unwrap() {
            ClassAttempt::Aborted {
                observed, bound, ..
            } => {
                assert!(observed as f64 > bound);
            }
            ClassAttempt::Assigned(_) => panic!("expected abort"),
        }
        assert!(net.rounds() > 0, "the abort consensus is charged");
        assert_eq!(
            net.metrics().rounds_with_prefix("identify-class/broadcast"),
            0,
            "abort happens before the R broadcast"
        );
        let err = identify_class_with_retry(&inst, &mut net, 2, &mut rng).unwrap_err();
        assert_eq!(
            err,
            crate::ApspError::StageAborted {
                stage: "identify-class",
                attempts: 2
            }
        );
    }

    #[test]
    fn broadcast_charges_rounds() {
        let g = book_graph(16, 5);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::paper());
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(46);
        let _ = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        assert!(net.metrics().rounds_with_prefix("identify-class") > 0);
    }

    #[test]
    fn heavier_delta_gets_higher_class() {
        // One block pair has many triangle pairs, others none; with full
        // sampling the loaded triple's class must dominate.
        let (g, _) = congestion_hotspot(16, 4, 6);
        let s = PairSet::all_pairs(16);
        let mut params = Params::paper();
        params.identify_rate = 1e9;
        params.identify_abort = 1e9;
        params.class_threshold = 0.25; // low boundary so classes separate at n=16
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let a = identify_class_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
        assert!(
            a.max_class() > 0,
            "hotspot should push some triple above class 0"
        );
        // the class is monotone in d
        for (label, &d) in a.d.iter().enumerate() {
            for (label2, &d2) in a.d.iter().enumerate() {
                if d <= d2 {
                    assert!(
                        a.class_of[label] <= a.class_of[label2],
                        "labels {label},{label2}"
                    );
                }
            }
        }
    }
}
