//! `FindEdges` via the Proposition 1 sampling reduction (Algorithm B).
//!
//! `ComputePairs` needs the promise `Γ(u, v) ≤ O(log n)`; general graphs
//! can have pairs in up to `n − 2` negative triangles. Algorithm B removes
//! the promise by *edge sampling*: at loop iteration `i` it keeps each edge
//! with probability `√(60·2^i·log n / n)`, so pairs with
//! `Γ(u, v) ≈ n/2^i` survive with `Θ(log n)` triangles — inside the
//! promise — and are detected and set aside. After `O(log n)` iterations
//! every remaining pair has `Γ ≤ 90 log n` and one final unsampled call
//! finishes the job.

use crate::compute_pairs::{compute_pairs, ComputePairsReport};
use crate::params::Params;
use crate::problem::PairSet;
use crate::step3::{SearchBackend, Step3Stats};
use crate::ApspError;
use qcc_congest::Clique;
use qcc_graph::UGraph;
use rand::Rng;

/// Result of a full `FindEdges` run.
#[derive(Clone, Debug)]
pub struct FindEdgesReport {
    /// All pairs of `S` found to be involved in a negative triangle.
    pub found: PairSet,
    /// Rounds consumed (on the caller's network).
    pub rounds: u64,
    /// Number of `ComputePairs` invocations (the `O(log n)` factor).
    pub invocations: u32,
    /// Aggregated Step-3 diagnostics across invocations.
    pub stats: Step3Stats,
}

/// Per-iteration diagnostics of the Proposition 1 loop, recording the
/// quantities its proof reasons about.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopIterationStats {
    /// Loop index `i` (the final unsampled call is recorded with
    /// `sampling_probability = 1`).
    pub iteration: u32,
    /// The edge-sampling probability `√(60·2^i·log n / n)` used.
    pub sampling_probability: f64,
    /// Edges surviving the sample.
    pub sampled_edges: usize,
    /// Largest `Γ_{G'}(u, v)` over the remaining `S` in the sampled graph —
    /// the proof wants this `≤ 90 log n` w.h.p.
    pub max_gamma_sampled: usize,
    /// Pairs confirmed (and removed from `S`) this iteration.
    pub caught: usize,
    /// `|S|` before this iteration.
    pub remaining_before: usize,
}

/// [`find_edges`] with per-iteration instrumentation of the Algorithm B
/// loop invariant (used by experiment E4 and the Proposition 1 tests).
///
/// # Errors
///
/// Propagates [`ApspError`] from the underlying `ComputePairs` runs.
pub fn find_edges_instrumented<R: Rng>(
    graph: &UGraph,
    s: &PairSet,
    params: Params,
    backend: SearchBackend,
    net: &mut Clique,
    rng: &mut R,
) -> Result<(FindEdgesReport, Vec<LoopIterationStats>), ApspError> {
    find_edges_inner(graph, s, params, backend, net, rng, true)
}

/// Solves `FindEdges` on `graph` restricted to `s` (Proposition 1).
///
/// # Errors
///
/// Propagates [`ApspError`] from the underlying `ComputePairs` runs.
///
/// # Examples
///
/// ```
/// use qcc_apsp::{find_edges, PairSet, Params, SearchBackend};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
/// use rand::SeedableRng;
///
/// // pair {0,1} sits in 5 negative triangles — more than the scaled
/// // promise at n = 16, so the sampling loop matters
/// let g = book_graph(16, 5);
/// let s = PairSet::all_pairs(16);
/// let mut net = Clique::new(16)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let report = find_edges(&g, &s, Params::paper(), SearchBackend::Quantum, &mut net, &mut rng)?;
/// assert!(report.found.contains(0, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn find_edges<R: Rng>(
    graph: &UGraph,
    s: &PairSet,
    params: Params,
    backend: SearchBackend,
    net: &mut Clique,
    rng: &mut R,
) -> Result<FindEdgesReport, ApspError> {
    find_edges_inner(graph, s, params, backend, net, rng, false).map(|(report, _)| report)
}

fn find_edges_inner<R: Rng>(
    graph: &UGraph,
    s: &PairSet,
    params: Params,
    backend: SearchBackend,
    net: &mut Clique,
    rng: &mut R,
    instrument: bool,
) -> Result<(FindEdgesReport, Vec<LoopIterationStats>), ApspError> {
    let n = graph.n();
    let rounds_before = net.rounds();
    let mut remaining = s.clone();
    let mut found = PairSet::new();
    let mut invocations = 0;
    let mut stats = Step3Stats::default();
    let mut loop_stats = Vec::new();

    let accumulate = |stats: &mut Step3Stats, report: &ComputePairsReport| {
        stats.searches += report.stats.searches;
        stats.iterations += report.stats.iterations;
        stats.eval_calls += report.stats.eval_calls;
        stats.typicality_violations += report.stats.typicality_violations;
        stats.repetitions += report.stats.repetitions;
    };
    let max_gamma = |g: &UGraph, s: &PairSet| -> usize {
        s.iter().map(|(u, v)| g.gamma(u, v)).max().unwrap_or(0)
    };

    // While-loop of Algorithm B: sampled subgraphs with increasing density.
    // Each iteration is an explicit span grouping the compute-pairs phases
    // run inside it (the flat phase labels are begun by those subroutines).
    let mut i: u32 = 0;
    while params.prop1_continues(n, i) {
        let p = params.prop1_probability(n, i);
        net.push_span(&format!("find-edges/loop{i}"));
        let sampled = graph.sample_edges(p, rng);
        if !remaining.is_empty() {
            let remaining_before = remaining.len();
            let report = compute_pairs(&sampled, &remaining, params, backend, net, rng)?;
            if instrument {
                loop_stats.push(LoopIterationStats {
                    iteration: i,
                    sampling_probability: p,
                    sampled_edges: sampled.edge_count(),
                    max_gamma_sampled: max_gamma(&sampled, &remaining),
                    caught: report.found.len(),
                    remaining_before,
                });
            }
            remaining.subtract(&report.found);
            found.union_with(&report.found);
            invocations += 1;
            accumulate(&mut stats, &report);
        }
        net.pop_span();
        i += 1;
        if i > 64 {
            break; // safety net; unreachable for sane params
        }
    }

    // Final unsampled call on the whole graph.
    net.push_span("find-edges/final");
    if !remaining.is_empty() {
        let remaining_before = remaining.len();
        let report = compute_pairs(graph, &remaining, params, backend, net, rng)?;
        if instrument {
            loop_stats.push(LoopIterationStats {
                iteration: i,
                sampling_probability: 1.0,
                sampled_edges: graph.edge_count(),
                max_gamma_sampled: max_gamma(graph, &remaining),
                caught: report.found.len(),
                remaining_before,
            });
        }
        found.union_with(&report.found);
        invocations += 1;
        accumulate(&mut stats, &report);
    }
    net.pop_span();

    Ok((
        FindEdgesReport {
            found,
            rounds: net.rounds() - rounds_before,
            invocations,
            stats,
        },
        loop_stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::reference_find_edges;
    use qcc_graph::{book_graph, random_ugraph, UGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finds_heavy_gamma_pairs_despite_the_promise() {
        // Γ(0, 1) = 13 at n = 16: well beyond the scaled promise bound
        let g = book_graph(16, 13);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let report = find_edges(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.found, reference_find_edges(&g, &s));
        assert!(report.invocations >= 1);
    }

    #[test]
    fn classical_backend_matches_reference_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(92);
        for trial in 0..3 {
            let g = random_ugraph(16, 0.5, 4, &mut rng);
            let s = PairSet::all_pairs(16);
            let mut net = Clique::new(16).unwrap();
            let report = find_edges(
                &g,
                &s,
                Params::paper(),
                SearchBackend::Classical,
                &mut net,
                &mut rng,
            )
            .unwrap();
            assert_eq!(report.found, reference_find_edges(&g, &s), "trial {trial}");
        }
    }

    #[test]
    fn loop_iterations_follow_the_paper_schedule() {
        // paper constants: while 60·2^i·log n ≤ n. At n = 16 the loop body
        // never runs (60·4 > 16): only the final call happens.
        let g = book_graph(16, 2);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(93);
        let report = find_edges(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.invocations, 1);

        // scaled constants at n = 16: prop1_base·2^i·log n ≤ n ⟺ 2^i·4 ≤ 16:
        // i ∈ {0, 1, 2} plus the final call.
        let mut net = Clique::new(16).unwrap();
        let report = find_edges(
            &g,
            &s,
            Params::scaled(),
            SearchBackend::Classical,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.invocations, 4);
    }

    #[test]
    fn empty_graph_yields_empty_output() {
        let g = UGraph::new(16);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(94);
        let report = find_edges(
            &g,
            &s,
            Params::scaled(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert!(report.found.is_empty());
    }

    #[test]
    fn instrumentation_records_the_loop_schedule() {
        // scaled params at n = 16: iterations i = 0, 1, 2 plus the final call
        let g = book_graph(16, 13);
        let s = PairSet::all_pairs(16);
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(96);
        let (report, loop_stats) = find_edges_instrumented(
            &g,
            &s,
            Params::scaled(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.invocations as usize, loop_stats.len());
        // sampling probabilities increase with i, final call has p = 1
        for w in loop_stats.windows(2) {
            assert!(w[0].sampling_probability <= w[1].sampling_probability + 1e-12);
        }
        assert_eq!(loop_stats.last().unwrap().sampling_probability, 1.0);
        // Proposition 1 invariant direction: sampled graphs are sparser
        // than the full graph and their max Γ never exceeds the full one
        let full_gamma = 13;
        for ls in &loop_stats {
            assert!(ls.sampled_edges <= g.edge_count());
            assert!(ls.max_gamma_sampled <= full_gamma);
            assert!(ls.remaining_before <= s.len());
        }
        // everything is eventually caught
        let caught: usize = loop_stats.iter().map(|ls| ls.caught).sum();
        assert_eq!(caught, report.found.len());
    }

    #[test]
    fn empty_s_short_circuits() {
        let g = book_graph(16, 3);
        let s = PairSet::new();
        let mut net = Clique::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(95);
        let report = find_edges(
            &g,
            &s,
            Params::paper(),
            SearchBackend::Quantum,
            &mut net,
            &mut rng,
        )
        .unwrap();
        assert!(report.found.is_empty());
        assert_eq!(report.invocations, 0);
        assert_eq!(report.rounds, 0);
    }
}
