//! Step 1 of ComputePairs: gathering edge weights at the triple nodes.
//!
//! Each node `(u, v, w) ∈ T = V × V × V'` loads the weights `f(u, w)` for
//! all `{u, w} ∈ P(u, w)` and `f(w, v)` for all `{w, v} ∈ P(w, v)`. Since
//! `|P(u, w)| = |P(w, v)| = O(n^{5/4})`, Lemma 1 routing delivers the
//! gather in `O(n^{1/4})` rounds — the dominant setup cost of the
//! algorithm, and exactly what the simulator measures.
//!
//! The gathered tables answer the Step-3 checking queries locally:
//! `min_{w ∈ w} (f(u, w) + f(w, v)) < −f(u, v)` iff some apex in `w`
//! completes a negative triangle with `{u, v}`.

use crate::instance::Instance;
use crate::wire::{weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, CongestError, Envelope, NodeId};
use std::cell::RefCell;

/// Sentinel: the cell was computed and no apex edge pair exists.
const NO_APEX: i64 = i64::MAX - 1;

/// Memo table for the oracle census: per triple label, the min-plus value
/// of every pair in its block pair, computed on first query and reused
/// until the gathered tables change.
///
/// Step 3 asks the same `(label, u, v)` question once per Grover iteration
/// per repetition — millions of times on the E1 workload — while the answer
/// only depends on the Step-1 tables. The cache turns the `O(|w|)` apex
/// scan into an `O(1)` lookup for every repeat, and the `version` stamp
/// invalidates it wholesale whenever a table entry is updated.
#[derive(Clone, Debug, Default)]
struct CensusCache {
    /// The [`GatheredWeights::version`] the tables were computed against.
    version: u64,
    /// `tables[label][i * |v| + l]`: min-plus of the oriented pair
    /// `(u_i, v_l)`, sentinel-coded; each label's table is built whole, by
    /// one batched flat min-plus product, on its first query.
    tables: Vec<Vec<i64>>,
    /// Per-label block-pair bounds, so the hot lookup orients a pair with
    /// four compares instead of re-deriving the blocks from the label.
    geom: Vec<LabelGeom>,
    hits: u64,
    misses: u64,
}

/// The coarse block-pair bounds of one triple label.
#[derive(Clone, Copy, Debug, Default)]
struct LabelGeom {
    u_start: u32,
    u_end: u32,
    v_start: u32,
    v_end: u32,
}

/// The per-triple weight tables loaded in Step 1.
#[derive(Clone, Debug)]
pub struct GatheredWeights {
    /// `uw[label][i * |w| + j] = f(u_i, w_j)` for `u_i ∈ u`, `w_j ∈ w`.
    uw: Vec<Vec<Option<i64>>>,
    /// `wv[label][j * |v| + l] = f(w_j, v_l)` for `w_j ∈ w`, `v_l ∈ v`.
    wv: Vec<Vec<Option<i64>>>,
    /// Bumped on every table mutation; the census cache checks it.
    version: u64,
    /// Lazily filled oracle-census memo (interior mutability so lookups
    /// stay `&self`, like the uncached ones).
    cache: RefCell<CensusCache>,
}

impl GatheredWeights {
    /// Looks up `f(u, w)` in the tables of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not in the triple's `u`-block or `w` not in its
    /// fine block.
    pub fn f_uw(&self, inst: &Instance<'_>, label: usize, u: usize, w: usize) -> Option<i64> {
        let (bu, _bv, bw) = inst.triples.decode(label);
        let ublock = inst.parts.coarse.block(bu);
        let wblock = inst.parts.fine.block(bw);
        assert!(ublock.contains(&u) && wblock.contains(&w));
        let i = u - ublock.start;
        let j = w - wblock.start;
        self.uw[label][i * wblock.len() + j]
    }

    /// Looks up `f(w, v)` in the tables of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the triple's `v`-block or `w` not in its
    /// fine block.
    pub fn f_wv(&self, inst: &Instance<'_>, label: usize, w: usize, v: usize) -> Option<i64> {
        let (_bu, bv, bw) = inst.triples.decode(label);
        let vblock = inst.parts.coarse.block(bv);
        let wblock = inst.parts.fine.block(bw);
        assert!(vblock.contains(&v) && wblock.contains(&w));
        let j = w - wblock.start;
        let l = v - vblock.start;
        self.wv[label][j * vblock.len() + l]
    }

    /// `min_{w ∈ w} (f(u, w) + f(w, v))` over existing apex edges, using
    /// only the tables gathered at `label`.
    ///
    /// # Errors
    ///
    /// Returns [`ApspError::Internal`] if the pair does not belong to the
    /// triple's block pair — an addressing bug, or corrupted routing state
    /// on a fault-injected network.
    pub fn min_plus(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
    ) -> Result<Option<i64>, ApspError> {
        let (bu, bv, bw) = inst.triples.decode(label);
        let ublock = inst.parts.coarse.block(bu);
        let vblock = inst.parts.coarse.block(bv);
        // Orient the unordered pair to the triple's (u-side, v-side).
        let (su, sv) = if ublock.contains(&u) && vblock.contains(&v) {
            (u, v)
        } else if ublock.contains(&v) && vblock.contains(&u) {
            (v, u)
        } else {
            return Err(ApspError::Internal {
                context: format!("pair ({u}, {v}) does not belong to block pair ({bu}, {bv})"),
            });
        };
        let wblock = inst.parts.fine.block(bw);
        let i = su - ublock.start;
        let l = sv - vblock.start;
        let wlen = wblock.len();
        let mut best: Option<i64> = None;
        for j in 0..wlen {
            // Skip the degenerate "apexes" equal to an endpoint.
            let w = wblock.start + j;
            if w == su || w == sv {
                continue;
            }
            if let (Some(a), Some(b)) = (
                self.uw[label][i * wlen + j],
                self.wv[label][j * vblock.len() + l],
            ) {
                let sum = a + b;
                best = Some(best.map_or(sum, |cur: i64| cur.min(sum)));
            }
        }
        Ok(best)
    }

    /// The Step-3 checking predicate: does some apex in the triple's fine
    /// block complete a negative triangle with the edge `{u, v}` of weight
    /// `f_uv`?
    ///
    /// Note: the paper's Inequality (2) prints `min ≤ f(u, v)`, but
    /// Definition 1 requires `f(u,v) + f(u,w) + f(w,v) < 0`, i.e.
    /// `min < −f(u, v)` — we implement the definition (the inequality in
    /// the paper is a typo; the surrounding text confirms the check is
    /// "is `{u, v, w}` a negative triangle").
    ///
    /// # Errors
    ///
    /// Propagates [`ApspError::Internal`] from [`GatheredWeights::min_plus`]
    /// when the pair does not belong to the triple's block pair.
    pub fn check_negative(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
        f_uv: i64,
    ) -> Result<bool, ApspError> {
        Ok(match self.min_plus(inst, label, u, v)? {
            Some(min_sum) => min_sum < -f_uv,
            None => false,
        })
    }

    /// [`GatheredWeights::min_plus`] through the oracle-census cache: the
    /// first query of a pair pays the apex scan, repeats are `O(1)`.
    /// The cache self-invalidates when [`GatheredWeights::version`] moved.
    ///
    /// # Errors
    ///
    /// Same as [`GatheredWeights::min_plus`].
    pub fn min_plus_cached(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
    ) -> Result<Option<i64>, ApspError> {
        let mut cache = self.cache.borrow_mut();
        self.cache_prologue(inst, &mut cache);
        let g = cache.geom[label];
        let (u32_, v32_) = (u as u32, v as u32);
        let (su, sv) =
            if (g.u_start..g.u_end).contains(&u32_) && (g.v_start..g.v_end).contains(&v32_) {
                (u32_, v32_)
            } else if (g.u_start..g.u_end).contains(&v32_) && (g.v_start..g.v_end).contains(&u32_) {
                (v32_, u32_)
            } else {
                // Foreign pair: defer to the uncached path for its error.
                drop(cache);
                return self.min_plus(inst, label, u, v);
            };
        let vlen = (g.v_end - g.v_start) as usize;
        let cell = (su - g.u_start) as usize * vlen + (sv - g.v_start) as usize;
        if cache.tables[label].is_empty() {
            // First query of this label since the last invalidation: answer
            // the whole block pair at once with the batched flat kernel.
            cache.misses += 1;
            cache.tables[label] = self.build_census_table(inst, label, g)?;
        } else {
            cache.hits += 1;
        }
        let entry = cache.tables[label][cell];
        Ok(if entry == NO_APEX { None } else { Some(entry) })
    }

    /// Brings the census cache in sync with the current table version:
    /// drops stale tables, sizes the per-label slots, and builds the label
    /// geometry index on first use.
    fn cache_prologue(&self, inst: &Instance<'_>, cache: &mut CensusCache) {
        if cache.version != self.version {
            cache.tables.clear();
            cache.version = self.version;
        }
        if cache.tables.is_empty() {
            cache.tables.resize(self.uw.len(), Vec::new());
        }
        if cache.geom.len() != self.uw.len() {
            cache.geom = (0..self.uw.len())
                .map(|l| {
                    let (bu, bv, _bw) = inst.triples.decode(l);
                    let ublock = inst.parts.coarse.block(bu);
                    let vblock = inst.parts.coarse.block(bv);
                    LabelGeom {
                        u_start: ublock.start as u32,
                        u_end: ublock.end as u32,
                        v_start: vblock.start as u32,
                        v_end: vblock.end as u32,
                    }
                })
                .collect();
        }
    }

    /// Batched [`GatheredWeights::check_negative_cached`]: answers every
    /// `(label, u, v, f_uv)` item into `out`, borrowing the census cache
    /// once for the whole batch instead of once per query. Cache hit/miss
    /// accounting is per item, identical to the scalar path.
    ///
    /// # Errors
    ///
    /// Same as [`GatheredWeights::check_negative`] — the first failing item
    /// aborts the batch.
    pub fn check_negative_cached_batch(
        &self,
        inst: &Instance<'_>,
        items: impl Iterator<Item = (usize, usize, usize, i64)>,
        out: &mut Vec<bool>,
    ) -> Result<(), ApspError> {
        let mut cache = self.cache.borrow_mut();
        self.cache_prologue(inst, &mut cache);
        // Hits are tallied locally and flushed at every exit: the common
        // path then avoids a read-modify-write per item.
        let mut pending_hits: u64 = 0;
        for (label, u, v, f_uv) in items {
            let g = cache.geom[label];
            let (u32_, v32_) = (u as u32, v as u32);
            let (su, sv) = if (g.u_start..g.u_end).contains(&u32_)
                && (g.v_start..g.v_end).contains(&v32_)
            {
                (u32_, v32_)
            } else if (g.u_start..g.u_end).contains(&v32_) && (g.v_start..g.v_end).contains(&u32_) {
                (v32_, u32_)
            } else {
                // Foreign pair: defer to the uncached path for its error,
                // releasing the cache borrow around the call.
                cache.hits += pending_hits;
                pending_hits = 0;
                drop(cache);
                out.push(self.check_negative(inst, label, u, v, f_uv)?);
                cache = self.cache.borrow_mut();
                continue;
            };
            let vlen = (g.v_end - g.v_start) as usize;
            let cell = (su - g.u_start) as usize * vlen + (sv - g.v_start) as usize;
            let cached = {
                let table = &cache.tables[label];
                if table.is_empty() {
                    None
                } else {
                    pending_hits += 1;
                    Some(table[cell])
                }
            };
            let entry = match cached {
                Some(entry) => entry,
                None => {
                    cache.misses += 1;
                    let table = match self.build_census_table(inst, label, g) {
                        Ok(table) => table,
                        Err(e) => {
                            cache.hits += pending_hits;
                            return Err(e);
                        }
                    };
                    cache.tables[label] = table;
                    cache.tables[label][cell]
                }
            };
            out.push(entry != NO_APEX && entry < -f_uv);
        }
        cache.hits += pending_hits;
        Ok(())
    }

    /// Opens an incremental census probe: the cache is borrowed and synced
    /// once, and every [`CensusProbe::check`] is then a plain table lookup.
    /// The streaming form of [`GatheredWeights::check_negative_cached_batch`]
    /// for callers that interleave lookups with other per-query work.
    pub(crate) fn census_probe<'g, 'i, 'd>(
        &'g self,
        inst: &'i Instance<'d>,
    ) -> CensusProbe<'g, 'i, 'd> {
        let mut cache = self.cache.borrow_mut();
        self.cache_prologue(inst, &mut cache);
        CensusProbe {
            owner: self,
            inst,
            cache: Some(cache),
            pending_hits: 0,
        }
    }

    /// Computes the full min-plus census table of `label` — every oriented
    /// pair of its block pair — as one rectangular flat min-plus product
    /// ([`qcc_graph::min_plus_flat_into`]) over the sentinel-coded `uw` and
    /// `wv` tables, then patches the few cells whose endpoints sit inside
    /// the fine block (the kernel knows no "skip the endpoint apexes" rule)
    /// with the scalar path. Entries outside the kernel's exact magnitude
    /// domain force a whole-table scalar fallback, so the table always
    /// matches [`GatheredWeights::min_plus`] cell for cell.
    fn build_census_table(
        &self,
        inst: &Instance<'_>,
        label: usize,
        g: LabelGeom,
    ) -> Result<Vec<i64>, ApspError> {
        let (_bu, _bv, bw) = inst.triples.decode(label);
        let wblock = inst.parts.fine.block(bw);
        let ulen = (g.u_end - g.u_start) as usize;
        let vlen = (g.v_end - g.v_start) as usize;
        let wlen = wblock.len();
        let encode = |t: &[Option<i64>]| -> Option<Vec<i64>> {
            t.iter()
                .map(|w| match *w {
                    None => Some(qcc_graph::TROPICAL_NONE),
                    Some(x) if x.unsigned_abs() <= qcc_graph::TROPICAL_FINITE_MAX as u64 => Some(x),
                    Some(_) => None,
                })
                .collect()
        };
        let scalar = |i: usize, l: usize| -> Result<i64, ApspError> {
            let su = g.u_start as usize + i;
            let sv = g.v_start as usize + l;
            Ok(match self.min_plus(inst, label, su, sv)? {
                None => NO_APEX,
                Some(x) => {
                    debug_assert!(x < NO_APEX, "min-plus value collides with a cache sentinel");
                    x
                }
            })
        };
        let (Some(a), Some(b)) = (encode(&self.uw[label]), encode(&self.wv[label])) else {
            let mut table = vec![NO_APEX; ulen * vlen];
            for i in 0..ulen {
                for l in 0..vlen {
                    table[i * vlen + l] = scalar(i, l)?;
                }
            }
            return Ok(table);
        };
        let mut coded = vec![qcc_graph::TROPICAL_NONE; ulen * vlen];
        qcc_graph::min_plus_flat_into(&a, &b, ulen, wlen, vlen, &mut coded);
        let mut table: Vec<i64> = coded
            .into_iter()
            .map(|v| match qcc_graph::tropical_decode(v) {
                None => NO_APEX,
                Some(x) => x,
            })
            .collect();
        // The kernel counted every apex; cells whose own endpoints lie in
        // the fine block must exclude them (a vertex is not its own apex).
        for i in 0..ulen {
            if wblock.contains(&(g.u_start as usize + i)) {
                for l in 0..vlen {
                    table[i * vlen + l] = scalar(i, l)?;
                }
            }
        }
        for l in 0..vlen {
            if wblock.contains(&(g.v_start as usize + l)) {
                for i in 0..ulen {
                    table[i * vlen + l] = scalar(i, l)?;
                }
            }
        }
        Ok(table)
    }

    /// [`GatheredWeights::check_negative`] through the oracle-census cache.
    ///
    /// # Errors
    ///
    /// Same as [`GatheredWeights::check_negative`].
    pub fn check_negative_cached(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
        f_uv: i64,
    ) -> Result<bool, ApspError> {
        Ok(match self.min_plus_cached(inst, label, u, v)? {
            Some(min_sum) => min_sum < -f_uv,
            None => false,
        })
    }

    /// Overwrites `f(u, w)` in the tables of `label`, invalidating the
    /// oracle-census cache (the solution sets may have changed).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not in the triple's `u`-block or `w` not in its
    /// fine block.
    pub fn set_uw_entry(
        &mut self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        w: usize,
        weight: Option<i64>,
    ) {
        let (bu, _bv, bw) = inst.triples.decode(label);
        let ublock = inst.parts.coarse.block(bu);
        let wblock = inst.parts.fine.block(bw);
        assert!(ublock.contains(&u) && wblock.contains(&w));
        let i = u - ublock.start;
        let j = w - wblock.start;
        self.uw[label][i * wblock.len() + j] = weight;
        self.version += 1;
    }

    /// Overwrites `f(w, v)` in the tables of `label`, invalidating the
    /// oracle-census cache.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the triple's `v`-block or `w` not in its
    /// fine block.
    pub fn set_wv_entry(
        &mut self,
        inst: &Instance<'_>,
        label: usize,
        w: usize,
        v: usize,
        weight: Option<i64>,
    ) {
        let (_bu, bv, bw) = inst.triples.decode(label);
        let vblock = inst.parts.coarse.block(bv);
        let wblock = inst.parts.fine.block(bw);
        assert!(vblock.contains(&v) && wblock.contains(&w));
        let j = w - wblock.start;
        let l = v - vblock.start;
        self.wv[label][j * vblock.len() + l] = weight;
        self.version += 1;
    }

    /// The mutation counter the census cache is keyed on.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// `(hits, misses)` of the oracle-census cache so far.
    pub fn census_cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.borrow();
        (cache.hits, cache.misses)
    }
}

/// A streaming census cursor over a borrowed, pre-synced cache — see
/// [`GatheredWeights::census_probe`]. Hit accounting is batched locally and
/// flushed on drop (and at every internal borrow release), so the hot path
/// avoids a read-modify-write per lookup.
pub(crate) struct CensusProbe<'g, 'i, 'd> {
    owner: &'g GatheredWeights,
    inst: &'i Instance<'d>,
    cache: Option<std::cell::RefMut<'g, CensusCache>>,
    pending_hits: u64,
}

impl CensusProbe<'_, '_, '_> {
    /// [`GatheredWeights::check_negative_cached`] against the held cache.
    ///
    /// # Errors
    ///
    /// Same as [`GatheredWeights::check_negative`].
    pub(crate) fn check(
        &mut self,
        label: usize,
        u: usize,
        v: usize,
        f_uv: i64,
    ) -> Result<bool, ApspError> {
        let cache = self.cache.as_mut().expect("probe cache is always held");
        let g = cache.geom[label];
        let (u32_, v32_) = (u as u32, v as u32);
        let (su, sv) =
            if (g.u_start..g.u_end).contains(&u32_) && (g.v_start..g.v_end).contains(&v32_) {
                (u32_, v32_)
            } else if (g.u_start..g.u_end).contains(&v32_) && (g.v_start..g.v_end).contains(&u32_) {
                (v32_, u32_)
            } else {
                // Foreign pair: defer to the uncached path for its error,
                // releasing the cache borrow around the call.
                cache.hits += self.pending_hits;
                self.pending_hits = 0;
                self.cache = None;
                let result = self.owner.check_negative(self.inst, label, u, v, f_uv);
                self.cache = Some(self.owner.cache.borrow_mut());
                return result;
            };
        let vlen = (g.v_end - g.v_start) as usize;
        let cell = (su - g.u_start) as usize * vlen + (sv - g.v_start) as usize;
        let cached = {
            let table = &cache.tables[label];
            if table.is_empty() {
                None
            } else {
                self.pending_hits += 1;
                Some(table[cell])
            }
        };
        let entry = match cached {
            Some(entry) => entry,
            None => {
                cache.misses += 1;
                let table = self.owner.build_census_table(self.inst, label, g)?;
                cache.tables[label] = table;
                cache.tables[label][cell]
            }
        };
        Ok(entry != NO_APEX && entry < -f_uv)
    }
}

impl Drop for CensusProbe<'_, '_, '_> {
    fn drop(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.hits += self.pending_hits;
        }
    }
}

/// Executes Step 1: every vertex owner streams its relevant weight rows to
/// the triple nodes via Lemma 1 routing.
///
/// # Errors
///
/// Returns a [`CongestError`] only on simulator-level addressing bugs.
///
/// # Examples
///
/// ```
/// use qcc_apsp::gather::gather_weights;
/// use qcc_apsp::{Instance, PairSet, Params};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
///
/// let g = book_graph(16, 2);
/// let s = PairSet::all_pairs(16);
/// let inst = Instance::new(&g, &s, Params::paper());
/// let mut net = Clique::new(16)?;
/// let gathered = gather_weights(&inst, &mut net)?;
/// // the triple holding blocks of vertices 0, 1 can answer the spine check
/// let f_uv = g.weight(0, 1).finite().unwrap();
/// let bu = inst.parts.coarse.block_of(0);
/// let bw = inst.parts.fine.block_of(2); // apex 2's block
/// let label = inst.triples.encode(bu, inst.parts.coarse.block_of(1), bw);
/// assert!(gathered.check_negative(&inst, label, 0, 1, f_uv)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gather_weights(
    inst: &Instance<'_>,
    net: &mut Clique,
) -> Result<GatheredWeights, CongestError> {
    let n = inst.n();
    let wb = weight_bits(inst.weight_magnitude());
    net.begin_phase("compute-pairs/step1-gather");

    if net.is_transparent() {
        // Charge-only gather: the route's cost (including the explicit
        // unit coloring below the scheduling limit) depends only on each
        // message's (src, dst, bits) in submission order, so ship empty
        // payloads in the exact same order and fill the tables straight
        // from the graph — the same rows the messages would carry.
        let mut sends: Vec<Envelope<Wire<()>>> = Vec::new();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            let dst = NodeId::new(inst.triples.labeling().node_of(label));
            let row_bits = wb * inst.parts.fine.block(bw).len() as u64;
            for a in inst.parts.coarse.block(bu) {
                sends.push(Envelope::new(NodeId::new(a), dst, Wire::new((), row_bits)));
            }
            for b in inst.parts.coarse.block(bv) {
                sends.push(Envelope::new(NodeId::new(b), dst, Wire::new((), row_bits)));
            }
        }
        net.route(sends)?;

        let label_count = inst.triples.labeling().label_count();
        let mut uw: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
        let mut wv: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
        for (_label, (bu, bv, bw)) in inst.triples.triples() {
            let wblock = inst.parts.fine.block(bw);
            let wlen = wblock.len();
            let mut uw_t = Vec::with_capacity(inst.parts.coarse.block(bu).len() * wlen);
            for a in inst.parts.coarse.block(bu) {
                uw_t.extend(wblock.clone().map(|w| inst.graph.weight(a, w).finite()));
            }
            let vblock = inst.parts.coarse.block(bv);
            let vlen = vblock.len();
            let mut wv_t = vec![None; wlen * vlen];
            for (l, b) in vblock.clone().enumerate() {
                for (j, w) in wblock.clone().enumerate() {
                    wv_t[j * vlen + l] = inst.graph.weight(w, b).finite();
                }
            }
            uw.push(uw_t);
            wv.push(wv_t);
        }
        return Ok(GatheredWeights {
            uw,
            wv,
            version: 0,
            cache: RefCell::new(CensusCache::default()),
        });
    }

    // Owner `a` sends, for each triple whose u-side (resp. v-side) block
    // contains `a`, the weights {f(a, w) : w ∈ w} as one message.
    // Message payload: (label, side, vertex, weights row over the fine block).
    let mut sends: Vec<Envelope<Wire<(usize, u8, usize, Vec<Option<i64>>)>>> = Vec::new();
    for (label, (bu, bv, bw)) in inst.triples.triples() {
        let dst = NodeId::new(inst.triples.labeling().node_of(label));
        let wblock = inst.parts.fine.block(bw);
        let row_bits = wb * wblock.len() as u64;
        for a in inst.parts.coarse.block(bu) {
            let row: Vec<Option<i64>> = wblock
                .clone()
                .map(|w| inst.graph.weight(a, w).finite())
                .collect();
            sends.push(Envelope::new(
                NodeId::new(a),
                dst,
                Wire::new((label, 0u8, a, row), row_bits),
            ));
        }
        for b in inst.parts.coarse.block(bv) {
            let row: Vec<Option<i64>> = wblock
                .clone()
                .map(|w| inst.graph.weight(w, b).finite())
                .collect();
            sends.push(Envelope::new(
                NodeId::new(b),
                dst,
                Wire::new((label, 1u8, b, row), row_bits),
            ));
        }
    }
    let boxes = net.route(sends)?;

    let label_count = inst.triples.labeling().label_count();
    let mut uw: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
    let mut wv: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
    for (label, (bu, bv, bw)) in inst.triples.triples() {
        let wlen = inst.parts.fine.block(bw).len();
        uw.push(vec![None; inst.parts.coarse.block(bu).len() * wlen]);
        wv.push(vec![None; wlen * inst.parts.coarse.block(bv).len()]);
        let _ = label;
    }
    for host in NodeId::all(n) {
        for (_src, msg) in boxes.of(host) {
            let (label, side, vertex, row) = &msg.value;
            let (bu, bv, bw) = inst.triples.decode(*label);
            debug_assert_eq!(inst.triples.labeling().node_of(*label), host.index());
            let wlen = inst.parts.fine.block(bw).len();
            if *side == 0 {
                let i = vertex - inst.parts.coarse.block(bu).start;
                for (j, w) in row.iter().enumerate() {
                    uw[*label][i * wlen + j] = *w;
                }
            } else {
                let l = vertex - inst.parts.coarse.block(bv).start;
                let vlen = inst.parts.coarse.block(bv).len();
                for (j, w) in row.iter().enumerate() {
                    wv[*label][j * vlen + l] = *w;
                }
            }
        }
    }

    Ok(GatheredWeights {
        uw,
        wv,
        version: 0,
        cache: RefCell::new(CensusCache::default()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (qcc_graph::UGraph, PairSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        (random_ugraph(n, 0.6, 5, &mut rng), PairSet::all_pairs(n))
    }

    #[test]
    fn gathered_tables_match_the_graph() {
        let (g, s) = setup(16, 51);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            for u in inst.parts.coarse.block(bu) {
                for w in inst.parts.fine.block(bw) {
                    assert_eq!(
                        gathered.f_uw(&inst, label, u, w),
                        g.weight(u, w).finite(),
                        "label {label} f({u},{w})"
                    );
                }
            }
            for w in inst.parts.fine.block(bw) {
                for v in inst.parts.coarse.block(bv) {
                    assert_eq!(gathered.f_wv(&inst, label, w, v), g.weight(w, v).finite());
                }
            }
        }
    }

    #[test]
    fn gather_costs_rounds() {
        let (g, s) = setup(16, 52);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let _ = gather_weights(&inst, &mut net).unwrap();
        assert!(net.rounds() > 0);
        assert!(net.metrics().rounds_with_prefix("compute-pairs/step1") > 0);
    }

    #[test]
    fn check_negative_matches_census() {
        let (g, s) = setup(16, 53);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            for (u, v) in inst.parts.coarse.pair_set(bu, bv) {
                if let Some(f_uv) = g.weight(u, v).finite() {
                    let expected = inst
                        .parts
                        .fine
                        .block(bw)
                        .any(|w| g.is_negative_triangle(u, v, w));
                    assert_eq!(
                        gathered.check_negative(&inst, label, u, v, f_uv).unwrap(),
                        expected,
                        "label {label} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn min_plus_skips_endpoint_apexes() {
        // pair {0, 1} with 2 as apex: blocks are small at n = 16, and when
        // 0 or 1 sit inside the apex block they must not count as apexes.
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let bu = inst.parts.coarse.block_of(0);
        let bv = inst.parts.coarse.block_of(1);
        let bw = inst.parts.fine.block_of(0); // the block containing vertex 0 itself
        let label = inst.triples.encode(bu, bv, bw);
        // must not treat w = 0 or w = 1 as an apex for the pair {0, 1}
        let census = inst
            .parts
            .fine
            .block(bw)
            .any(|w| g.is_negative_triangle(0, 1, w));
        let f_uv = g.weight(0, 1).finite().unwrap();
        assert_eq!(
            gathered.check_negative(&inst, label, 0, 1, f_uv).unwrap(),
            census
        );
    }

    #[test]
    fn min_plus_rejects_foreign_pairs() {
        let (g, s) = setup(16, 54);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        // triple (0, 0, 0) covers only block 0's pairs; vertex 15 is in the
        // last coarse block
        let label = inst.triples.encode(0, 0, 0);
        let err = gathered.min_plus(&inst, label, 0, 15).unwrap_err();
        assert!(matches!(err, ApspError::Internal { .. }));
        assert!(err.to_string().contains("does not belong"));
    }
}
