//! Step 1 of ComputePairs: gathering edge weights at the triple nodes.
//!
//! Each node `(u, v, w) ∈ T = V × V × V'` loads the weights `f(u, w)` for
//! all `{u, w} ∈ P(u, w)` and `f(w, v)` for all `{w, v} ∈ P(w, v)`. Since
//! `|P(u, w)| = |P(w, v)| = O(n^{5/4})`, Lemma 1 routing delivers the
//! gather in `O(n^{1/4})` rounds — the dominant setup cost of the
//! algorithm, and exactly what the simulator measures.
//!
//! The gathered tables answer the Step-3 checking queries locally:
//! `min_{w ∈ w} (f(u, w) + f(w, v)) < −f(u, v)` iff some apex in `w`
//! completes a negative triangle with `{u, v}`.

use crate::instance::Instance;
use crate::wire::{weight_bits, Wire};
use crate::ApspError;
use qcc_congest::{Clique, CongestError, Envelope, NodeId};

/// The per-triple weight tables loaded in Step 1.
#[derive(Clone, Debug)]
pub struct GatheredWeights {
    /// `uw[label][i * |w| + j] = f(u_i, w_j)` for `u_i ∈ u`, `w_j ∈ w`.
    uw: Vec<Vec<Option<i64>>>,
    /// `wv[label][j * |v| + l] = f(w_j, v_l)` for `w_j ∈ w`, `v_l ∈ v`.
    wv: Vec<Vec<Option<i64>>>,
}

impl GatheredWeights {
    /// Looks up `f(u, w)` in the tables of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not in the triple's `u`-block or `w` not in its
    /// fine block.
    pub fn f_uw(&self, inst: &Instance<'_>, label: usize, u: usize, w: usize) -> Option<i64> {
        let (bu, _bv, bw) = inst.triples.decode(label);
        let ublock = inst.parts.coarse.block(bu);
        let wblock = inst.parts.fine.block(bw);
        assert!(ublock.contains(&u) && wblock.contains(&w));
        let i = u - ublock.start;
        let j = w - wblock.start;
        self.uw[label][i * wblock.len() + j]
    }

    /// Looks up `f(w, v)` in the tables of `label`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not in the triple's `v`-block or `w` not in its
    /// fine block.
    pub fn f_wv(&self, inst: &Instance<'_>, label: usize, w: usize, v: usize) -> Option<i64> {
        let (_bu, bv, bw) = inst.triples.decode(label);
        let vblock = inst.parts.coarse.block(bv);
        let wblock = inst.parts.fine.block(bw);
        assert!(vblock.contains(&v) && wblock.contains(&w));
        let j = w - wblock.start;
        let l = v - vblock.start;
        self.wv[label][j * vblock.len() + l]
    }

    /// `min_{w ∈ w} (f(u, w) + f(w, v))` over existing apex edges, using
    /// only the tables gathered at `label`.
    ///
    /// # Errors
    ///
    /// Returns [`ApspError::Internal`] if the pair does not belong to the
    /// triple's block pair — an addressing bug, or corrupted routing state
    /// on a fault-injected network.
    pub fn min_plus(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
    ) -> Result<Option<i64>, ApspError> {
        let (bu, bv, bw) = inst.triples.decode(label);
        let ublock = inst.parts.coarse.block(bu);
        let vblock = inst.parts.coarse.block(bv);
        // Orient the unordered pair to the triple's (u-side, v-side).
        let (su, sv) = if ublock.contains(&u) && vblock.contains(&v) {
            (u, v)
        } else if ublock.contains(&v) && vblock.contains(&u) {
            (v, u)
        } else {
            return Err(ApspError::Internal {
                context: format!("pair ({u}, {v}) does not belong to block pair ({bu}, {bv})"),
            });
        };
        let wblock = inst.parts.fine.block(bw);
        let i = su - ublock.start;
        let l = sv - vblock.start;
        let wlen = wblock.len();
        let mut best: Option<i64> = None;
        for j in 0..wlen {
            // Skip the degenerate "apexes" equal to an endpoint.
            let w = wblock.start + j;
            if w == su || w == sv {
                continue;
            }
            if let (Some(a), Some(b)) = (
                self.uw[label][i * wlen + j],
                self.wv[label][j * vblock.len() + l],
            ) {
                let sum = a + b;
                best = Some(best.map_or(sum, |cur: i64| cur.min(sum)));
            }
        }
        Ok(best)
    }

    /// The Step-3 checking predicate: does some apex in the triple's fine
    /// block complete a negative triangle with the edge `{u, v}` of weight
    /// `f_uv`?
    ///
    /// Note: the paper's Inequality (2) prints `min ≤ f(u, v)`, but
    /// Definition 1 requires `f(u,v) + f(u,w) + f(w,v) < 0`, i.e.
    /// `min < −f(u, v)` — we implement the definition (the inequality in
    /// the paper is a typo; the surrounding text confirms the check is
    /// "is `{u, v, w}` a negative triangle").
    ///
    /// # Errors
    ///
    /// Propagates [`ApspError::Internal`] from [`GatheredWeights::min_plus`]
    /// when the pair does not belong to the triple's block pair.
    pub fn check_negative(
        &self,
        inst: &Instance<'_>,
        label: usize,
        u: usize,
        v: usize,
        f_uv: i64,
    ) -> Result<bool, ApspError> {
        Ok(match self.min_plus(inst, label, u, v)? {
            Some(min_sum) => min_sum < -f_uv,
            None => false,
        })
    }
}

/// Executes Step 1: every vertex owner streams its relevant weight rows to
/// the triple nodes via Lemma 1 routing.
///
/// # Errors
///
/// Returns a [`CongestError`] only on simulator-level addressing bugs.
///
/// # Examples
///
/// ```
/// use qcc_apsp::gather::gather_weights;
/// use qcc_apsp::{Instance, PairSet, Params};
/// use qcc_congest::Clique;
/// use qcc_graph::book_graph;
///
/// let g = book_graph(16, 2);
/// let s = PairSet::all_pairs(16);
/// let inst = Instance::new(&g, &s, Params::paper());
/// let mut net = Clique::new(16)?;
/// let gathered = gather_weights(&inst, &mut net)?;
/// // the triple holding blocks of vertices 0, 1 can answer the spine check
/// let f_uv = g.weight(0, 1).finite().unwrap();
/// let bu = inst.parts.coarse.block_of(0);
/// let bw = inst.parts.fine.block_of(2); // apex 2's block
/// let label = inst.triples.encode(bu, inst.parts.coarse.block_of(1), bw);
/// assert!(gathered.check_negative(&inst, label, 0, 1, f_uv)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn gather_weights(
    inst: &Instance<'_>,
    net: &mut Clique,
) -> Result<GatheredWeights, CongestError> {
    let n = inst.n();
    let wb = weight_bits(inst.weight_magnitude());
    net.begin_phase("compute-pairs/step1-gather");

    // Owner `a` sends, for each triple whose u-side (resp. v-side) block
    // contains `a`, the weights {f(a, w) : w ∈ w} as one message.
    // Message payload: (label, side, vertex, weights row over the fine block).
    let mut sends: Vec<Envelope<Wire<(usize, u8, usize, Vec<Option<i64>>)>>> = Vec::new();
    for (label, (bu, bv, bw)) in inst.triples.triples() {
        let dst = NodeId::new(inst.triples.labeling().node_of(label));
        let wblock = inst.parts.fine.block(bw);
        let row_bits = wb * wblock.len() as u64;
        for a in inst.parts.coarse.block(bu) {
            let row: Vec<Option<i64>> = wblock
                .clone()
                .map(|w| inst.graph.weight(a, w).finite())
                .collect();
            sends.push(Envelope::new(
                NodeId::new(a),
                dst,
                Wire::new((label, 0u8, a, row), row_bits),
            ));
        }
        for b in inst.parts.coarse.block(bv) {
            let row: Vec<Option<i64>> = wblock
                .clone()
                .map(|w| inst.graph.weight(w, b).finite())
                .collect();
            sends.push(Envelope::new(
                NodeId::new(b),
                dst,
                Wire::new((label, 1u8, b, row), row_bits),
            ));
        }
    }
    let boxes = net.route(sends)?;

    let label_count = inst.triples.labeling().label_count();
    let mut uw: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
    let mut wv: Vec<Vec<Option<i64>>> = Vec::with_capacity(label_count);
    for (label, (bu, bv, bw)) in inst.triples.triples() {
        let wlen = inst.parts.fine.block(bw).len();
        uw.push(vec![None; inst.parts.coarse.block(bu).len() * wlen]);
        wv.push(vec![None; wlen * inst.parts.coarse.block(bv).len()]);
        let _ = label;
    }
    for host in NodeId::all(n) {
        for (_src, msg) in boxes.of(host) {
            let (label, side, vertex, row) = &msg.value;
            let (bu, bv, bw) = inst.triples.decode(*label);
            debug_assert_eq!(inst.triples.labeling().node_of(*label), host.index());
            let wlen = inst.parts.fine.block(bw).len();
            if *side == 0 {
                let i = vertex - inst.parts.coarse.block(bu).start;
                for (j, w) in row.iter().enumerate() {
                    uw[*label][i * wlen + j] = *w;
                }
            } else {
                let l = vertex - inst.parts.coarse.block(bv).start;
                let vlen = inst.parts.coarse.block(bv).len();
                for (j, w) in row.iter().enumerate() {
                    wv[*label][j * vlen + l] = *w;
                }
            }
        }
    }

    Ok(GatheredWeights { uw, wv })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::problem::PairSet;
    use qcc_graph::{book_graph, random_ugraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (qcc_graph::UGraph, PairSet) {
        let mut rng = StdRng::seed_from_u64(seed);
        (random_ugraph(n, 0.6, 5, &mut rng), PairSet::all_pairs(n))
    }

    #[test]
    fn gathered_tables_match_the_graph() {
        let (g, s) = setup(16, 51);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            for u in inst.parts.coarse.block(bu) {
                for w in inst.parts.fine.block(bw) {
                    assert_eq!(
                        gathered.f_uw(&inst, label, u, w),
                        g.weight(u, w).finite(),
                        "label {label} f({u},{w})"
                    );
                }
            }
            for w in inst.parts.fine.block(bw) {
                for v in inst.parts.coarse.block(bv) {
                    assert_eq!(gathered.f_wv(&inst, label, w, v), g.weight(w, v).finite());
                }
            }
        }
    }

    #[test]
    fn gather_costs_rounds() {
        let (g, s) = setup(16, 52);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let _ = gather_weights(&inst, &mut net).unwrap();
        assert!(net.rounds() > 0);
        assert!(net.metrics().rounds_with_prefix("compute-pairs/step1") > 0);
    }

    #[test]
    fn check_negative_matches_census() {
        let (g, s) = setup(16, 53);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        for (label, (bu, bv, bw)) in inst.triples.triples() {
            for (u, v) in inst.parts.coarse.pair_set(bu, bv) {
                if let Some(f_uv) = g.weight(u, v).finite() {
                    let expected = inst
                        .parts
                        .fine
                        .block(bw)
                        .any(|w| g.is_negative_triangle(u, v, w));
                    assert_eq!(
                        gathered.check_negative(&inst, label, u, v, f_uv).unwrap(),
                        expected,
                        "label {label} pair ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn min_plus_skips_endpoint_apexes() {
        // pair {0, 1} with 2 as apex: blocks are small at n = 16, and when
        // 0 or 1 sit inside the apex block they must not count as apexes.
        let g = book_graph(16, 3);
        let s = PairSet::all_pairs(16);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let bu = inst.parts.coarse.block_of(0);
        let bv = inst.parts.coarse.block_of(1);
        let bw = inst.parts.fine.block_of(0); // the block containing vertex 0 itself
        let label = inst.triples.encode(bu, bv, bw);
        // must not treat w = 0 or w = 1 as an apex for the pair {0, 1}
        let census = inst
            .parts
            .fine
            .block(bw)
            .any(|w| g.is_negative_triangle(0, 1, w));
        let f_uv = g.weight(0, 1).finite().unwrap();
        assert_eq!(
            gathered.check_negative(&inst, label, 0, 1, f_uv).unwrap(),
            census
        );
    }

    #[test]
    fn min_plus_rejects_foreign_pairs() {
        let (g, s) = setup(16, 54);
        let inst = Instance::new(&g, &s, Params::scaled());
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        // triple (0, 0, 0) covers only block 0's pairs; vertex 15 is in the
        // last coarse block
        let label = inst.triples.encode(0, 0, 0);
        let err = gathered.min_plus(&inst, label, 0, 15).unwrap_err();
        assert!(matches!(err, ApspError::Internal { .. }));
        assert!(err.to_string().contains("does not belong"));
    }
}
