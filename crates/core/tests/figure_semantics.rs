//! Per-figure semantic tests: each algorithm box of the paper, checked
//! against its stated contract on randomized instances.

use qcc_apsp::eval_procedure::{evaluate_joint, AlphaContext, EvalQuery};
use qcc_apsp::gather::gather_weights;
use qcc_apsp::identify_class::identify_class_with_retry;
use qcc_apsp::lambda::{build_lambda_cover_with_retry, KeptPair};
use qcc_apsp::{compute_pairs, Instance, PairSet, Params, SearchBackend};
use qcc_congest::Clique;
use qcc_graph::{random_ugraph, PaperPartitions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Figure 1 contract: the three steps appear, in order, in the phase log.
#[test]
fn figure1_steps_execute_in_order() {
    let mut rng = StdRng::seed_from_u64(5001);
    let g = random_ugraph(16, 0.5, 4, &mut rng);
    let s = PairSet::all_pairs(16);
    let mut net = Clique::new(16).unwrap();
    compute_pairs(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )
    .unwrap();
    let labels: Vec<&str> = net
        .metrics()
        .phases()
        .iter()
        .map(|p| p.label.as_str())
        .collect();
    let pos = |prefix: &str| labels.iter().position(|l| l.starts_with(prefix));
    let step1 = pos("compute-pairs/step1").expect("step 1 ran");
    let step2 = pos("compute-pairs/step2").expect("step 2 ran");
    let identify = pos("identify-class").expect("IdentifyClass ran");
    let step3 = pos("step3/").expect("step 3 ran");
    assert!(step1 < step2 && step2 < identify && identify < step3);
}

/// Figure 2 contract: R is a subset of the S-edges, every node's draw is
/// below the abort bound, and d counts only R-pairs.
#[test]
fn figure2_r_is_bounded_and_contained() {
    let mut rng = StdRng::seed_from_u64(5002);
    let g = random_ugraph(16, 0.6, 4, &mut rng);
    let mut s = PairSet::new();
    for (u, v, _) in g.edges().take(30) {
        s.insert(u, v);
    }
    let mut params = Params::paper();
    params.identify_rate = 2.0; // sub-unit sampling at n = 16 (p = 0.5)
    let inst = Instance::new(&g, &s, params);
    assert!(params.identify_probability(16) < 1.0);
    let mut net = Clique::new(16).unwrap();
    let a = identify_class_with_retry(&inst, &mut net, 20, &mut rng).unwrap();
    let bound = params.identify_abort_bound(16);
    let mut per_vertex = [0usize; 16];
    for &(u, v, w) in &a.r {
        assert!(s.contains(u, v), "R ⊆ S");
        assert!(g.has_edge(u, v), "R pairs are edges");
        assert_eq!(g.weight(u, v).finite(), Some(w));
        per_vertex[u] += 1;
    }
    for (u, &count) in per_vertex.iter().enumerate() {
        assert!(
            (count as f64) <= bound,
            "vertex {u} drew {count} > bound {bound}"
        );
    }
    // d counts R-members only: d ≤ |R ∩ P(u,v)| always
    for (label, (bu, bv, _)) in inst.triples.triples() {
        let r_in_block =
            a.r.iter()
                .filter(|&&(u, v, _)| {
                    let (cu, cv) = (inst.parts.coarse.block_of(u), inst.parts.coarse.block_of(v));
                    (cu == bu && cv == bv) || (cu == bv && cv == bu)
                })
                .count();
        assert!(a.d[label] <= r_in_block);
    }
}

/// Figures 4–5 contract: the evaluation answer equals the negative-triangle
/// census for *every* query, across random α contexts and duplication
/// factors.
#[test]
fn figures45_answers_equal_census_across_contexts() {
    let mut rng = StdRng::seed_from_u64(5003);
    let g = random_ugraph(16, 0.55, 5, &mut rng);
    let s = PairSet::all_pairs(16);
    for dup_denominator in [720.0, 0.5, 0.05] {
        let mut params = Params::paper();
        params.dup_denominator = dup_denominator;
        let inst = Instance::new(&g, &s, params);
        let mut net = Clique::new(16).unwrap();
        let gathered = gather_weights(&inst, &mut net).unwrap();
        let labels: Vec<usize> = (0..inst.triples.labeling().label_count()).collect();
        for alpha in [0u32, 2, 5] {
            let actx = AlphaContext::build(&inst, &mut net, alpha, &labels).unwrap();
            let mut queries = Vec::new();
            for (u, v, w) in g.edges() {
                let bu = inst.parts.coarse.block_of(u);
                let bv = inst.parts.coarse.block_of(v);
                queries.push(EvalQuery {
                    search_label: inst.searches.encode(
                        bu.min(bv),
                        bu.max(bv),
                        rng.gen_range(0..inst.parts.fine.num_blocks()),
                    ),
                    pair: KeptPair {
                        u: u.min(v),
                        v: u.max(v),
                        weight: w,
                    },
                    target: rng.gen_range(0..inst.parts.fine.num_blocks()),
                });
            }
            let answers = evaluate_joint(&inst, &mut net, &gathered, &actx, &queries).unwrap();
            for (q, &a) in queries.iter().zip(&answers) {
                assert_eq!(
                    a,
                    inst.has_apex_in_block(q.pair.u, q.pair.v, q.target),
                    "alpha {alpha}, dup_denominator {dup_denominator}, pair ({}, {})",
                    q.pair.u,
                    q.pair.v
                );
            }
        }
    }
}

/// Step 2 contract (Lemma 2 consequence): every kept pair is an S-edge
/// with its true weight, and the per-label lists respect the balance cap.
#[test]
fn step2_kept_lists_respect_the_contract() {
    let mut rng = StdRng::seed_from_u64(5004);
    let g = random_ugraph(81, 0.2, 4, &mut rng);
    let s = PairSet::all_pairs(81);
    let inst = Instance::new(&g, &s, Params::paper());
    let mut net = Clique::new(81).unwrap();
    let cover = build_lambda_cover_with_retry(&inst, &mut net, 10, &mut rng).unwrap();
    let cap = inst.params.balance_cap(81);
    for (label, list) in cover.kept.iter().enumerate() {
        let mut per_vertex = std::collections::HashMap::new();
        for kp in list {
            assert!(g.has_edge(kp.u, kp.v));
            assert_eq!(g.weight(kp.u, kp.v).finite(), Some(kp.weight));
            *per_vertex.entry(kp.u).or_insert(0usize) += 1;
            *per_vertex.entry(kp.v).or_insert(0usize) += 1;
        }
        for (&vtx, &count) in &per_vertex {
            assert!(
                (count as f64) <= cap,
                "label {label}, vertex {vtx}: {count} > cap {cap}"
            );
        }
    }
}

/// The Section 5.1 geometry: the triple and search labelings address the
/// same block structure, and pair sets tile the full pair universe.
#[test]
fn section51_geometry_is_consistent() {
    for n in [16usize, 81, 100, 256] {
        let parts = PaperPartitions::new(n);
        let q = parts.coarse.num_blocks();
        // every vertex pair lives in exactly one unordered block pair
        let mut total = 0usize;
        for a in 0..q {
            for b in a..q {
                total += parts.coarse.pair_set(a, b).len();
            }
        }
        assert_eq!(total, n * (n - 1) / 2, "n = {n}");
    }
}
