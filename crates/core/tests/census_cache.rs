//! Oracle-census cache semantics: eager per-label builds, hit/miss
//! accounting, version-stamped invalidation when the gathered tables
//! mutate mid-search, and scalar/batch agreement.

use qcc_apsp::gather::gather_weights;
use qcc_apsp::{Instance, PairSet, Params};
use qcc_congest::Clique;
use qcc_graph::random_ugraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A `(label, u, v, w)` probe where the pair spans two distinct coarse
/// blocks and the apex `w` is neither endpoint, so a planted `f(u, w) +
/// f(w, v)` path is guaranteed to show up in the census.
fn pick_probe(inst: &Instance<'_>) -> (usize, usize, usize, usize) {
    for label in 0..inst.triples.labeling().label_count() {
        let (bu, bv, bw) = inst.triples.decode(label);
        if bu == bv {
            continue;
        }
        let u = inst.parts.coarse.block(bu).start;
        let v = inst.parts.coarse.block(bv).start;
        if let Some(w) = inst.parts.fine.block(bw).find(|&w| w != u && w != v) {
            return (label, u, v, w);
        }
    }
    panic!("no usable probe in this instance");
}

#[test]
fn mutating_the_solution_set_recomputes_the_census() {
    let mut rng = StdRng::seed_from_u64(71);
    let g = random_ugraph(16, 0.6, 5, &mut rng);
    let s = PairSet::all_pairs(16);
    let inst = Instance::new(&g, &s, Params::paper());
    let mut net = Clique::new(16).unwrap();
    let mut gathered = gather_weights(&inst, &mut net).unwrap();
    let (label, u, v, w) = pick_probe(&inst);

    // First query of the label builds its whole census table: one miss.
    let before = gathered.min_plus_cached(&inst, label, u, v).unwrap();
    let (hits, misses) = gathered.census_cache_stats();
    assert_eq!((hits, misses), (0, 1));
    // Repeats are cache hits and stable.
    assert_eq!(
        gathered.min_plus_cached(&inst, label, u, v).unwrap(),
        before
    );
    assert_eq!(gathered.census_cache_stats(), (1, 1));

    // Mid-search mutation of the solution set: plant a deeply negative
    // apex path through w. The version stamp must move and the next query
    // must recompute (a fresh miss), not serve the stale table.
    let version = gathered.version();
    gathered.set_uw_entry(&inst, label, u, w, Some(-9_999));
    gathered.set_wv_entry(&inst, label, w, v, Some(-9_999));
    assert!(gathered.version() > version, "mutations bump the version");
    let after = gathered.min_plus_cached(&inst, label, u, v).unwrap();
    let (_, misses_after) = gathered.census_cache_stats();
    assert_eq!(misses_after, 2, "stale table was rebuilt");
    assert_eq!(after, Some(-19_998), "planted path dominates the census");
    assert_ne!(after, before, "cache did not serve the stale answer");
    // The rebuilt table agrees with the uncached scan cell for cell.
    assert_eq!(after, gathered.min_plus(&inst, label, u, v).unwrap());
}

#[test]
fn cached_census_matches_uncached_scan_everywhere() {
    let mut rng = StdRng::seed_from_u64(72);
    let g = random_ugraph(16, 0.5, 6, &mut rng);
    let s = PairSet::all_pairs(16);
    let inst = Instance::new(&g, &s, Params::paper());
    let mut net = Clique::new(16).unwrap();
    let gathered = gather_weights(&inst, &mut net).unwrap();

    for label in 0..inst.triples.labeling().label_count() {
        let (bu, bv, _bw) = inst.triples.decode(label);
        for u in inst.parts.coarse.block(bu) {
            for v in inst.parts.coarse.block(bv) {
                assert_eq!(
                    gathered.min_plus_cached(&inst, label, u, v).unwrap(),
                    gathered.min_plus(&inst, label, u, v).unwrap(),
                    "label {label} pair ({u}, {v})"
                );
            }
        }
    }
}

#[test]
fn batch_answers_agree_with_scalar_answers() {
    let mut rng = StdRng::seed_from_u64(73);
    let g = random_ugraph(16, 0.5, 6, &mut rng);
    let s = PairSet::all_pairs(16);
    let inst = Instance::new(&g, &s, Params::paper());
    let mut net = Clique::new(16).unwrap();
    let gathered = gather_weights(&inst, &mut net).unwrap();

    let mut items = Vec::new();
    for label in 0..inst.triples.labeling().label_count() {
        let (bu, bv, _bw) = inst.triples.decode(label);
        for u in inst.parts.coarse.block(bu) {
            for v in inst.parts.coarse.block(bv) {
                for f_uv in [-3i64, 0, 3] {
                    items.push((label, u, v, f_uv));
                }
            }
        }
    }
    let mut batch = Vec::with_capacity(items.len());
    gathered
        .check_negative_cached_batch(&inst, items.iter().copied(), &mut batch)
        .unwrap();
    assert_eq!(batch.len(), items.len());
    for (&(label, u, v, f_uv), &got) in items.iter().zip(&batch) {
        assert_eq!(
            got,
            gathered
                .check_negative_cached(&inst, label, u, v, f_uv)
                .unwrap(),
            "label {label} pair ({u}, {v}) f_uv {f_uv}"
        );
    }
}
