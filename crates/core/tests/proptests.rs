//! Property-based tests for the algorithm crate.

use proptest::prelude::*;
use qcc_apsp::{
    apsp, apsp_driver, dolev_find_edges, reference_find_edges, ApspAlgorithm, DriverConfig,
    PairSet, Params, Wire,
};
use qcc_congest::{FaultPlan, NetConfig, Payload};
use qcc_graph::{floyd_warshall, random_reweighted_digraph, random_ugraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The Dolev listing baseline is exact on arbitrary random graphs.
    #[test]
    fn dolev_is_exact(seed in 0u64..1000, n in 4usize..16, density in 0.1f64..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_ugraph(n, density, 5, &mut rng);
        let s = PairSet::all_pairs(n);
        let report = dolev_find_edges(&g, &s).unwrap();
        prop_assert_eq!(report.found, reference_find_edges(&g, &s));
    }

    /// Naive and semiring APSP agree with Floyd–Warshall on random
    /// negative-cycle-free digraphs.
    #[test]
    fn baselines_agree_with_oracle(seed in 0u64..500, n in 2usize..14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let naive = apsp(&g, Params::paper(), ApspAlgorithm::NaiveBroadcast, &mut rng).unwrap();
        prop_assert_eq!(&naive.distances, &oracle);
        let semi = apsp(&g, Params::paper(), ApspAlgorithm::SemiringSquaring, &mut rng).unwrap();
        prop_assert_eq!(&semi.distances, &oracle);
    }

    /// PairSet set algebra: subtract then union restores a superset.
    #[test]
    fn pairset_algebra(pairs in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
        let mut s = PairSet::new();
        for (u, v) in pairs {
            if u != v {
                s.insert(u, v);
            }
        }
        let half: PairSet = s.iter().take(s.len() / 2).collect();
        let mut rest = s.clone();
        rest.subtract(&half);
        prop_assert_eq!(rest.len() + half.len(), s.len());
        let mut merged = rest.clone();
        merged.union_with(&half);
        prop_assert_eq!(merged, s);
    }

    /// Wire payloads report exactly their declared bits.
    #[test]
    fn wire_bits_are_exact(bits in 1u64..10_000) {
        let w = Wire::new((1usize, 2usize), bits);
        prop_assert_eq!(w.bit_size(), bits);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any moderate fault plan behind the reliable envelope still yields
    /// the exact, certificate-verified APSP matrix through the driver.
    #[test]
    fn enveloped_faults_never_skew_apsp(
        seed in 0u64..200,
        n in 4usize..10,
        drop in 0.0f64..0.5,
        corrupt in 0.0f64..0.2,
        dup in 0.0f64..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_reweighted_digraph(n, 0.5, 6, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let plan = FaultPlan {
            drop_rate: drop,
            corrupt_rate: corrupt,
            duplicate_rate: dup,
            seed,
            ..FaultPlan::default()
        };
        let cfg = DriverConfig {
            algorithm: ApspAlgorithm::NaiveBroadcast,
            net: NetConfig::faulty(plan),
            ..DriverConfig::default()
        };
        let out = apsp_driver(&g, &cfg, &mut rng, None).unwrap();
        prop_assert!(out.verified);
        prop_assert_eq!(&out.report.distances, &oracle);
    }
}

/// Full quantum pipeline equals the oracle on a batch of seeds (moderate
/// sizes keep the end-to-end run fast; larger sweeps live in the benches).
#[test]
fn quantum_apsp_is_correct_across_seeds() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let g = random_reweighted_digraph(7, 0.5, 4, &mut rng);
        let oracle = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = apsp(
            &g,
            Params::paper(),
            ApspAlgorithm::QuantumTriangle,
            &mut rng,
        )
        .unwrap();
        assert_eq!(report.distances, oracle, "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quantized APSP: error within (n−1)q, monotone in q, exact at q = 1.
    #[test]
    fn quantization_error_bound_holds(seed in 0u64..300, q in 1i64..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = qcc_graph::random_nonneg_digraph(7, 0.5, 60, &mut rng);
        let exact = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = qcc_apsp::quantized_apsp(
            &g,
            q,
            Params::paper(),
            qcc_apsp::SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        let err = qcc_apsp::max_additive_error(&exact, &report.distances);
        prop_assert!(err <= 6 * q, "q = {}: err {}", q, err);
        if q == 1 {
            prop_assert_eq!(report.distances, exact);
        }
    }

    /// Witnessed APSP paths: every reconstructed path realizes its distance.
    #[test]
    fn witnessed_paths_realize_distances(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_reweighted_digraph(6, 0.5, 5, &mut rng);
        let fw = floyd_warshall(&g.adjacency_matrix()).unwrap();
        let report = qcc_apsp::apsp_with_paths(
            &g,
            Params::paper(),
            qcc_apsp::SearchBackend::Classical,
            &mut rng,
        )
        .unwrap();
        prop_assert_eq!(report.oracle.distances(), &fw);
        for u in 0..6 {
            for v in 0..6 {
                if u == v { continue; }
                match report.oracle.path(u, v) {
                    Some(p) => {
                        let w = qcc_graph::path_weight(&g, &p).expect("valid hops");
                        prop_assert_eq!(qcc_graph::ExtWeight::from(w), fw[(u, v)]);
                        prop_assert!(p.len() <= 6);
                    }
                    None => prop_assert_eq!(fw[(u, v)], qcc_graph::ExtWeight::PosInf),
                }
            }
        }
    }

    /// The sampling helper is distributionally sound at the tails.
    #[test]
    fn sample_indices_tail_bounds(seed in 0u64..500, p in 0.01f64..0.99) {
        let mut rng = StdRng::seed_from_u64(seed);
        let universe = 5000;
        let picked = qcc_apsp::sample_indices(universe, p, &mut rng);
        let mean = universe as f64 * p;
        let sigma = (universe as f64 * p * (1.0 - p)).sqrt();
        prop_assert!(
            ((picked.len() as f64) - mean).abs() <= 6.0 * sigma + 2.0,
            "picked {} vs mean {:.1}",
            picked.len(),
            mean
        );
    }
}
