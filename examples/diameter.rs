//! The Section 4.1 framework example: diameter via quantum maximum finding.
//!
//! Le Gall–Magniez (PODC 2018), the framework the paper builds on,
//! computes the diameter by searching for the vertex of maximum
//! eccentricity with a distributed Grover search. This example mirrors
//! that pipeline on the CONGEST-CLIQUE simulator: distances come from the
//! distributed semiring APSP, eccentricities are the row maxima, and the
//! Dürr–Høyer quantum maximum finds the diameter with `O(√n)` eccentricity
//! evaluations instead of `n`.
//!
//! Run with: `cargo run --release --example diameter`

use qcc::algo::{apsp, ApspAlgorithm, Params};
use qcc::graph::{generators::random_nonneg_digraph, ExtWeight};
use qcc::quantum::quantum_maximum;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    // strongly connected-ish: dense nonnegative digraph
    let g = random_nonneg_digraph(n, 0.4, 9, &mut rng);
    println!("digraph: {n} vertices, {} arcs", g.arc_count());

    // Distances via the distributed classical O~(n^{1/3}) baseline.
    let report = apsp(
        &g,
        Params::paper(),
        ApspAlgorithm::SemiringSquaring,
        &mut rng,
    )?;
    println!("semiring APSP: {} rounds", report.rounds);

    // Eccentricity of v = max over reachable u of dist(v, u); infinite
    // rows mean a disconnected graph (eccentricity undefined -> skip).
    let ecc: Vec<i64> = (0..n)
        .map(|v| {
            (0..n)
                .filter_map(|u| match report.distances[(v, u)] {
                    ExtWeight::Finite(d) => Some(d),
                    _ => None,
                })
                .max()
                .unwrap_or(0)
        })
        .collect();

    let classical_diameter = *ecc.iter().max().expect("nonempty");

    // Quantum maximum over node-held eccentricities (Dürr–Høyer).
    let out = quantum_maximum(n, |v| ecc[v], &mut rng);
    println!(
        "quantum maximum finding: vertex {} with eccentricity {} \
         ({} Grover iterations over {} stages; classical scan = {} evaluations)",
        out.index, ecc[out.index], out.iterations, out.stages, n
    );
    assert_eq!(ecc[out.index], classical_diameter, "quantum max must agree");
    println!("diameter = {classical_diameter} (verified against the classical scan)");
    Ok(())
}
