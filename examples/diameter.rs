//! The Section 4.1 framework example: diameter via quantum maximum finding.
//!
//! Le Gall–Magniez (PODC 2018), the framework the paper builds on,
//! computes the diameter by searching for the vertex of maximum
//! eccentricity with a distributed Grover search. This example mirrors
//! that pipeline on the CONGEST-CLIQUE simulator: distances come from the
//! distributed semiring APSP, eccentricities are the row maxima, and the
//! Dürr–Høyer quantum maximum finds the diameter with `O(√n)` eccentricity
//! evaluations instead of `n`.
//!
//! Eccentricities are [`ExtWeight`]s, not bare integers: a vertex that
//! cannot reach some other vertex has eccentricity `inf`, and the diameter
//! of a disconnected graph is honestly `inf` — an earlier version of this
//! example collapsed all-infinite rows to 0 and could under-report. The
//! convention lives in `qcc::algo::eccentricities` / `diameter_of`; the
//! `qcc diameter` subcommand runs the same pipeline with the search
//! charged through the traced network.
//!
//! Run with: `cargo run --release --example diameter`

use qcc::algo::{apsp, diameter_of, eccentricities, ApspAlgorithm, Params};
use qcc::graph::generators::random_nonneg_digraph;
use qcc::quantum::quantum_maximum;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 24;
    let mut rng = rand::rngs::StdRng::seed_from_u64(404);
    // strongly connected-ish: dense nonnegative digraph
    let g = random_nonneg_digraph(n, 0.4, 9, &mut rng);
    println!("digraph: {n} vertices, {} arcs", g.arc_count());

    // Distances via the distributed classical O~(n^{1/3}) baseline.
    let report = apsp(
        &g,
        Params::paper(),
        ApspAlgorithm::SemiringSquaring,
        &mut rng,
    )?;
    println!("semiring APSP: {} rounds", report.rounds);

    // Eccentricity of v = max over u of dist(v, u), infinities included:
    // an unreachable vertex makes ecc(v) = inf instead of being skipped.
    let ecc = eccentricities(&report.distances);
    let classical_diameter = diameter_of(&ecc).expect("nonempty");
    if !ecc.iter().all(|e| e.is_finite()) {
        println!("graph is not strongly connected: the diameter is infinite");
    }

    // Quantum maximum over node-held eccentricities (Dürr–Høyer).
    let out = quantum_maximum(n, |v| ecc[v], &mut rng);
    println!(
        "quantum maximum finding: vertex {} with eccentricity {} \
         ({} Grover iterations over {} stages; classical scan = {} evaluations)",
        out.index, ecc[out.index], out.iterations, out.stages, n
    );
    assert_eq!(ecc[out.index], classical_diameter, "quantum max must agree");
    println!("diameter = {classical_diameter} (verified against the classical scan)");
    Ok(())
}
