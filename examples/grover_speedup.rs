//! The quadratic quantum search speedup, measured (experiment E10).
//!
//! Sweeps the search-domain size and compares the number of distributed
//! evaluation calls Grover's algorithm needs against the classical linear
//! scan, then demonstrates the multiple-search machinery of Theorem 3 with
//! its typicality bounds.
//!
//! Run with: `cargo run --release --example grover_speedup`

use qcc::quantum::{
    classical_search, grover_search_amplified, multi_grover_search, repetitions_for_target,
    AtypicalInputError, GroverAmplitudes, MultiOracle, SearchOracle, TypicalityBounds,
};
use rand::SeedableRng;

struct Marked {
    target: usize,
    n: usize,
}

impl SearchOracle for Marked {
    fn domain_size(&self) -> usize {
        self.n
    }
    fn truth(&self, item: usize) -> bool {
        item == self.target
    }
    fn evaluate_distributed(&mut self, item: usize) -> bool {
        item == self.target
    }
}

struct ManyNeedles {
    domain: usize,
    needles: Vec<usize>,
    beta: f64,
}

impl MultiOracle for ManyNeedles {
    fn domain_size(&self) -> usize {
        self.domain
    }
    fn num_searches(&self) -> usize {
        self.needles.len()
    }
    fn truth(&self, search: usize, item: usize) -> bool {
        self.needles[search] == item
    }
    fn evaluate(&mut self, tuple: &[usize]) -> Result<Vec<bool>, AtypicalInputError> {
        let freq = qcc::quantum::max_frequency(tuple, self.domain);
        if freq as f64 > self.beta {
            return Err(AtypicalInputError {
                max_frequency: freq,
                beta: self.beta,
            });
        }
        Ok(tuple
            .iter()
            .enumerate()
            .map(|(s, &i)| self.needles[s] == i)
            .collect())
    }
    fn evaluate_classical(&mut self, item: usize) -> Vec<bool> {
        self.needles.iter().map(|&t| t == item).collect()
    }
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    println!("single search: oracle calls, Grover vs classical scan");
    println!(
        "{:>8} {:>10} {:>10} {:>8}",
        "|X|", "grover", "classical", "ratio"
    );
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let target = n / 3;
        let mut oracle = Marked { target, n };
        let out = grover_search_amplified(&mut oracle, 10, &mut rng);
        assert_eq!(out.found, Some(target));
        let mut oracle = Marked { target, n };
        let classical = classical_search(&mut oracle);
        let ratio = classical.distributed_calls as f64 / out.distributed_calls as f64;
        println!(
            "{n:>8} {:>10} {:>10} {ratio:>8.1}",
            out.distributed_calls, classical.distributed_calls
        );
    }
    println!(
        "(theory: {} iterations suffice for |X| = 4096, quadratically below 4096)",
        GroverAmplitudes::new(4096, 1).optimal_iterations()
    );

    // Theorem 3: many searches sharing one truncated evaluator.
    let domain = 16;
    let m = 512;
    let needles: Vec<usize> = (0..m).map(|s| (7 * s + 3) % domain).collect();
    let bounds = TypicalityBounds::new(m, domain, 8.0 * m as f64 / domain as f64 + 1.0);
    println!("\nmultiple searches: m = {m}, |X| = {domain}");
    println!(
        "  Theorem 3 assumptions hold: {}",
        bounds.assumptions_hold()
    );
    println!(
        "  atypical-mass bound (Lemma 5): {:.3e}",
        bounds.projection_mass_bound()
    );
    println!("  success target: >= {:.6}", bounds.success_lower_bound());
    let mut oracle = ManyNeedles {
        domain,
        needles: needles.clone(),
        beta: bounds.beta,
    };
    let out = multi_grover_search(&mut oracle, repetitions_for_target(m), &mut rng);
    let ok = out
        .found
        .iter()
        .enumerate()
        .filter(|(s, f)| **f == Some(needles[*s]))
        .count();
    println!(
        "  found {ok}/{m} witnesses in {} shared iterations ({} typicality refusals)",
        out.iterations, out.typicality_violations
    );
    assert_eq!(ok, m, "all searches must find their witnesses");
}
