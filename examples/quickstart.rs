//! Quickstart: run the quantum distributed APSP end to end.
//!
//! Builds a random negative-cycle-free digraph, solves all-pairs shortest
//! paths with the paper's `O~(n^{1/4} log W)`-round quantum algorithm, and
//! cross-checks the distances against sequential Floyd–Warshall.
//!
//! Run with: `cargo run --release --example quickstart`

use qcc::algo::{apsp, ApspAlgorithm, Params};
use qcc::graph::{floyd_warshall, generators::random_reweighted_digraph, ExtWeight};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let g = random_reweighted_digraph(n, 0.5, 8, &mut rng);
    println!(
        "input: {n}-vertex digraph, {} arcs, weights in [-{m}, {m}]",
        g.arc_count(),
        m = g.weight_magnitude()
    );

    let report = apsp(
        &g,
        Params::paper(),
        ApspAlgorithm::QuantumTriangle,
        &mut rng,
    )?;
    println!(
        "quantum APSP finished: {} physical rounds, {} distance products",
        report.rounds, report.products
    );

    // Cross-check against the sequential oracle.
    let oracle = floyd_warshall(&g.adjacency_matrix())?;
    assert_eq!(
        report.distances, oracle,
        "distributed result must match the oracle"
    );
    println!("distances verified against Floyd–Warshall");

    // Print the distance matrix.
    println!(
        "\n      {}",
        (0..n).map(|j| format!("{j:>6}")).collect::<String>()
    );
    for i in 0..n {
        print!("{i:>4}: ");
        for j in 0..n {
            match report.distances[(i, j)] {
                ExtWeight::Finite(d) => print!("{d:>6}"),
                ExtWeight::PosInf => print!("{:>6}", "inf"),
                ExtWeight::NegInf => print!("{:>6}", "-inf"),
            }
        }
        println!();
    }
    Ok(())
}
