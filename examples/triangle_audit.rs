//! Domain scenario: auditing a clearing network for loss triangles.
//!
//! A clearing house models bilateral netting agreements as an undirected
//! weighted graph: `f(u, v)` is the net exposure of settling the pair
//! `{u, v}` directly. A *negative triangle* — three institutions whose
//! pairwise settlements sum below zero — is a loss cycle the auditor must
//! flag, and for every flagged pair the desk wants to know it participates
//! in one. That is exactly `FindEdges`, and this example runs the paper's
//! quantum `ComputePairs` machinery (with the Proposition 1 sampling loop)
//! against the exhaustive census.
//!
//! Run with: `cargo run --release --example triangle_audit`

use qcc::algo::{find_edges, reference_find_edges, PairSet, Params, RoundBreakdown, SearchBackend};
use qcc::congest::Clique;
use qcc::graph::UGraph;
use rand::{Rng, SeedableRng};

fn clearing_network(n: usize, rng: &mut impl Rng) -> UGraph {
    let mut g = UGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(0.55) {
                // exposures lean positive, with occasional deep discounts
                let w = if rng.gen_bool(0.2) {
                    rng.gen_range(-9..0)
                } else {
                    rng.gen_range(0..7)
                };
                g.add_edge(u, v, w);
            }
        }
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let g = clearing_network(n, &mut rng);
    let s = PairSet::all_pairs(n);
    println!(
        "clearing network: {n} institutions, {} netting agreements",
        g.edge_count()
    );

    let mut net = Clique::new(n)?;
    let report = find_edges(
        &g,
        &s,
        Params::paper(),
        SearchBackend::Quantum,
        &mut net,
        &mut rng,
    )?;
    println!(
        "quantum audit: {} flagged pairs in {} rounds ({} ComputePairs calls, \
         {} Grover iterations, {} typicality refusals)",
        report.found.len(),
        report.rounds,
        report.invocations,
        report.stats.iterations,
        report.stats.typicality_violations,
    );

    let expected = reference_find_edges(&g, &s);
    assert_eq!(
        report.found, expected,
        "audit must match the exhaustive census"
    );
    println!("verified against the exhaustive O(n^3) census");

    println!("\nflagged pairs (in at least one loss triangle):");
    for (u, v) in report.found.iter() {
        let gamma = g.gamma(u, v);
        println!("  institutions {u:>2} - {v:<2}   loss triangles: {gamma}");
    }

    println!("\ncommunication bill by phase group:");
    print!("{}", RoundBreakdown::from_metrics(net.metrics()));
    Ok(())
}
