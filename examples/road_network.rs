//! Domain scenario: routing over a toll-and-subsidy road network.
//!
//! A logistics operator runs a grid road network where every road segment
//! has a cost (fuel + tolls) and some segments carry *subsidies* (negative
//! effective cost) — so Dijkstra is off the table and distances need a
//! negative-weight-capable APSP. This example solves the fleet's full
//! routing table with three distributed algorithms on the same simulated cluster
//! and compares their communication bills.
//!
//! Run with: `cargo run --release --example road_network`

use qcc::algo::{apsp, ApspAlgorithm, Params};
use qcc::graph::{floyd_warshall, DiGraph, ExtWeight};
use rand::{Rng, SeedableRng};

/// Builds a `side × side` grid with random costs and a sparse set of
/// subsidized corridors, kept free of negative cycles by construction
/// (subsidies are rebates on a positive base cost).
fn grid_network(side: usize, rng: &mut impl Rng) -> DiGraph {
    let n = side * side;
    let mut g = DiGraph::new(n);
    let id = |r: usize, c: usize| r * side + c;
    // vertex potentials implement rebates without creating negative cycles
    let potential: Vec<i64> = (0..n).map(|_| rng.gen_range(0..6)).collect();
    for r in 0..side {
        for c in 0..side {
            let u = id(r, c);
            let mut connect = |v: usize, rng: &mut dyn rand::RngCore| {
                let base = rng.gen_range(1..9);
                g.add_arc(u, v, base + potential[u] - potential[v]);
                let back = rng.gen_range(1..9);
                g.add_arc(v, u, back + potential[v] - potential[u]);
            };
            if c + 1 < side {
                connect(id(r, c + 1), rng);
            }
            if r + 1 < side {
                connect(id(r + 1, c), rng);
            }
        }
    }
    g
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 3;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = grid_network(side, &mut rng);
    let n = g.n();
    let negative = g.arcs().filter(|&(_, _, w)| w < 0).count();
    println!(
        "road network: {side}x{side} grid ({n} depots), {} segments, {negative} subsidized",
        g.arc_count()
    );

    let oracle = floyd_warshall(&g.adjacency_matrix())?;

    println!("\n{:<22} {:>10} {:>9}", "algorithm", "rounds", "products");
    for algorithm in [
        ApspAlgorithm::NaiveBroadcast,
        ApspAlgorithm::SemiringSquaring,
        ApspAlgorithm::QuantumTriangle,
    ] {
        let report = apsp(&g, Params::paper(), algorithm, &mut rng)?;
        assert_eq!(
            report.distances, oracle,
            "{algorithm:?} must match the oracle"
        );
        println!(
            "{:<22} {:>10} {:>9}",
            format!("{algorithm:?}"),
            report.rounds,
            report.products
        );
    }

    // Show one route cost: opposite grid corners.
    let (a, b) = (0, n - 1);
    match oracle[(a, b)] {
        ExtWeight::Finite(d) => println!("\ncheapest corner-to-corner delivery: {d} cost units"),
        _ => println!("\ncorners are disconnected"),
    }
    println!("(all three algorithms returned identical routing tables)");
    Ok(())
}
