//! Explicit shortest *routes* through the distributed pipeline
//! (footnote 1 of the paper).
//!
//! Computes APSP with witness-tracking distance products — the weight-
//! scaling trick costs one extra `log n` factor, exactly the footnote's
//! "polylogarithmic" overhead — and prints explicit vertex routes, not
//! just distances.
//!
//! Run with: `cargo run --release --example shortest_routes`

use qcc::algo::{apsp_with_paths, Params, SearchBackend};
use qcc::graph::{generators::random_reweighted_digraph, path_weight, ExtWeight};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 9;
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let g = random_reweighted_digraph(n, 0.45, 7, &mut rng);
    println!(
        "digraph: {n} vertices, {} arcs (negative arcs allowed)",
        g.arc_count()
    );

    let report = apsp_with_paths(&g, Params::paper(), SearchBackend::Classical, &mut rng)?;
    println!(
        "witnessed APSP: {} rounds, {} witnessed distance products\n",
        report.rounds, report.products
    );

    let mut printed = 0;
    for u in 0..n {
        for v in 0..n {
            if u == v || printed >= 10 {
                continue;
            }
            if let Some(path) = report.oracle.path(u, v) {
                if path.len() > 2 {
                    let d = report.oracle.distances()[(u, v)];
                    let w = path_weight(&g, &path).expect("valid route");
                    assert_eq!(ExtWeight::from(w), d, "route weight must equal distance");
                    let route = path
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    println!("dist({u}, {v}) = {d:<4}  route: {route}");
                    printed += 1;
                }
            }
        }
    }
    println!("\n(every printed route's arc-weight sum was asserted equal to its distance)");
    Ok(())
}
