//! # qcc — quantum distributed APSP in the CONGEST-CLIQUE model
//!
//! Facade crate re-exporting the full reproduction of *"Quantum Distributed
//! Algorithm for the All-Pairs Shortest Path Problem in the CONGEST-CLIQUE
//! Model"* (Izumi & Le Gall, PODC 2019):
//!
//! * [`congest`] — the synchronous, bit-accounted network simulator;
//! * [`graph`] — weighted graphs, tropical matrices, workload generators,
//!   sequential oracles;
//! * [`quantum`] — exact amplitude-level simulation of distributed Grover
//!   search (single and multiple parallel, with the Theorem-3 typicality
//!   machinery);
//! * [`algo`] — the paper's algorithm stack (`ComputePairs`, `FindEdges`,
//!   distance products, APSP) and the classical baselines.
//!
//! ## Quickstart
//!
//! ```
//! use qcc::algo::{apsp, ApspAlgorithm, Params};
//! use qcc::graph::generators::random_reweighted_digraph;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let g = random_reweighted_digraph(8, 0.5, 6, &mut rng);
//! let report = apsp(&g, Params::paper(), ApspAlgorithm::QuantumTriangle, &mut rng)?;
//! println!(
//!     "quantum APSP: {} physical rounds over {} distance products",
//!     report.rounds, report.products
//! );
//! # Ok::<(), qcc::algo::ApspError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CONGEST-CLIQUE network simulator (re-export of [`qcc_congest`]).
pub mod congest {
    pub use qcc_congest::*;
}

/// Graphs, matrices and workloads (re-export of [`qcc_graph`]).
pub mod graph {
    pub use qcc_graph::*;
}

/// Distributed quantum search simulation (re-export of [`qcc_quantum`]).
pub mod quantum {
    pub use qcc_quantum::*;
}

/// The paper's algorithms and baselines (re-export of [`qcc_apsp`]).
pub mod algo {
    pub use qcc_apsp::*;
}

pub mod cli;
pub mod serve;
