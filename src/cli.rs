//! Command-line front-end (argument parsing and dispatch for `qcc`).
//!
//! Kept dependency-free: a small hand-rolled `--flag value` parser feeding
//! typed commands. Every subcommand declares the exact flag set it accepts
//! and anything else — a misspelled flag, a stray positional, a repeated
//! flag — is rejected with an error naming the offender, so typos like
//! `--wamx` fail loudly instead of silently running with defaults. The
//! binary in `src/bin/qcc.rs` is a thin wrapper so the parsing and dispatch
//! logic stays unit-testable.

use crate::algo::{
    apsp_driver, apsp_traced, apsp_with_paths_traced, compute_pairs, distance_params, gossip_apsp,
    quantum_gamma_count, reference_find_edges, ApspAlgorithm, ApspError, DistanceParam,
    DriverConfig, EngineConfig, ExtremumBackend, ExtremumConfig, FallbackPolicy, GossipApspConfig,
    LoadPlan, PairSet, Params, QueryEngine, SearchBackend, TransportKind,
};
use crate::congest::{
    parse_trace, Clique, FaultPlan, NetConfig, TopologySpec, TraceSink, TraceSummary,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run APSP on a random instance and report rounds.
    Apsp {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Algorithm selection.
        algorithm: ApspAlgorithm,
        /// Maximum weight magnitude.
        w_max: u64,
        /// NDJSON trace output file.
        trace: Option<String>,
        /// Seeded fault plan to inject (arms the reliable envelope).
        faults: Option<FaultPlan>,
        /// Verify the output with the Las-Vegas driver's certificate.
        verify: bool,
        /// Driver retry budget (extra attempts after the first).
        max_retries: u32,
        /// Communication substrate: the Lenzen clique or coded gossip.
        transport: TransportKind,
        /// Topology for the gossip transport (requires `--transport
        /// gossip`; defaults to `mesh:4` there).
        topology: Option<TopologySpec>,
    },
    /// Compute a distance parameter (diameter / radius / eccentricities)
    /// by extremum search over the node-held eccentricities.
    Distance {
        /// Which parameter to compute.
        param: DistanceParam,
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Algorithm for the distance-matrix stage.
        algorithm: ApspAlgorithm,
        /// Maximum weight magnitude.
        w_max: u64,
        /// Arc density of the random instance (low values disconnect it).
        density: f64,
        /// Quantum Dürr–Høyer search or classical gather-and-scan.
        backend: ExtremumBackend,
        /// NDJSON trace output file.
        trace: Option<String>,
        /// Seeded fault plan to inject (arms the reliable envelope).
        faults: Option<FaultPlan>,
        /// Verify distances (driver certificate) and the claimed extremum
        /// (distributed witness check).
        verify: bool,
        /// Driver retry budget (extra attempts after the first).
        max_retries: u32,
    },
    /// Run `FindEdgesWithPromise` on a planted instance.
    FindEdges {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Quantum or classical Step 3.
        backend: SearchBackend,
        /// NDJSON trace output file.
        trace: Option<String>,
    },
    /// Reconstruct explicit shortest routes.
    Paths {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// NDJSON trace output file.
        trace: Option<String>,
    },
    /// Count negative triangles through sample pairs by quantum counting.
    Gamma {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Phase-register bits.
        bits: u32,
        /// NDJSON trace output file.
        trace: Option<String>,
    },
    /// Compute APSP once, then answer NDJSON queries on stdin.
    Serve {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Algorithm for the initial APSP run.
        algorithm: ApspAlgorithm,
        /// Maximum weight magnitude.
        w_max: u64,
        /// Keep at most this many per-source rows resident (LRU) instead
        /// of the full matrix.
        row_cache: Option<usize>,
        /// NDJSON trace output file for the initial run.
        trace: Option<String>,
        /// Seeded fault plan to inject (arms the reliable envelope).
        faults: Option<FaultPlan>,
        /// Verify the initial run with the Las-Vegas driver's certificate.
        verify: bool,
        /// Driver retry budget (extra attempts after the first).
        max_retries: u32,
    },
    /// Render an NDJSON trace file as a span tree.
    TraceSummary {
        /// Trace file to read.
        file: String,
        /// Fail unless the scaled round total equals this.
        expect_rounds: Option<u64>,
        /// Deepest span level to print.
        max_depth: usize,
    },
    /// Print usage.
    Help,
}

/// A CLI parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text shown by `qcc help`.
pub const USAGE: &str = "\
qcc — quantum distributed APSP in the CONGEST-CLIQUE model

USAGE:
    qcc <COMMAND> [--n N] [--seed S] [flags]

COMMANDS:
    apsp           run all-pairs shortest paths   [--algorithm quantum|classical|naive|semiring] [--wmax W] [--trace FILE]
                   [--faults SPEC] [--verify] [--max-retries K]
                   [--transport clique|gossip] [--topology clique|ring|mesh[:D]|torus]
    diameter       largest shortest-path distance [--algorithm quantum|classical|naive|semiring] [--backend quantum|scan]
                   [--wmax W] [--density D] [--trace FILE] [--faults SPEC] [--verify] [--max-retries K]
    radius         smallest eccentricity          (same flags as diameter)
    ecc            full eccentricity vector       (same flags as diameter, minus --backend)
    find-edges     run FindEdgesWithPromise       [--backend quantum|classical] [--trace FILE]
    paths          APSP with explicit route extraction   [--trace FILE]
    gamma          quantum triangle counting      [--bits B] [--trace FILE]
    serve          compute APSP once, answer queries from cache
                   [--algorithm quantum|classical|naive|semiring] [--wmax W]
                   [--row-cache N] [--faults SPEC] [--verify] [--max-retries K] [--trace FILE]
    trace-summary  render an NDJSON trace tree    FILE [--expect-rounds R] [--max-depth D]
    help           show this message

Defaults: --n 8 (apsp/paths), --n 12 (diameter/radius/ecc), --n 16
(find-edges/gamma), --seed 7, --density 0.5.
--trace FILE writes one NDJSON event per span open/close, per
communication call, and per injected fault; inspect it with
`qcc trace-summary FILE`.

diameter and radius take the extremum of the per-node eccentricities
with a Durr-Hoyer quantum search run through the traced network
(O(sqrt n) expected oracle evaluations); --backend scan gathers all n
values at the coordinator instead. ecc gathers the full vector.
Unreachable pairs make eccentricities infinite: a disconnected graph
honestly reports an infinite diameter rather than 0. --density below
0.5 makes disconnected instances likely; --density 0 guarantees one.
With --verify the claimed extremum is additionally checked by a
distributed certificate (every node compares the claim against its own
eccentricity) and failed attempts retry with fresh randomness before
degrading to the verified classical scan.

--faults SPEC injects seeded, deterministic network faults and arms the
ack/retransmit envelope. SPEC is comma-separated key=value items:
drop=R, corrupt=R, dup=R (rates in [0,1]), seed=S, crash=NODE@ROUND,
link=SRC>DST:RATE. --verify runs the self-verifying Las-Vegas driver
(retry up to --max-retries times, then degrade to the classical
semiring fallback).

apsp --transport gossip replaces the clique with RLNC-coded gossip over
a general topology (--topology, default mesh:4): every node broadcasts
its adjacency row as random linear combinations of coded chunks, then
solves locally. Coded redundancy replaces the ack/retransmit envelope
as the loss-recovery mechanism; a disconnected topology, a crashed
node, or losses outrunning the redundancy fail with a typed error —
never a silently wrong matrix. The output reports wasted bandwidth
(received packets that taught the receiver nothing).

serve reads NDJSON requests from stdin, one object per line, and writes
one NDJSON response per request: {\"op\":\"dist\",\"u\":0,\"v\":5},
{\"op\":\"path\",...}, {\"op\":\"update\",\"changes\":[{\"u\":0,\"v\":1,
\"weight\":7}]}, {\"op\":\"stats\"}, {\"op\":\"shutdown\"}. Malformed
lines get {\"ok\":false,...} responses. --row-cache N serves from at most
N resident per-source rows (LRU) instead of the full matrix.

EXIT CODES:
    0  success (serve: clean shutdown or end of input)
    1  error (bad input, algorithm failure)
    2  usage error
    3  no attempt passed verification (apsp, serve, diameter, radius
       and ecc with --verify)
    4  the answer came from the classical fallback (degraded)
";

/// Flags and positionals of one subcommand, validated against its
/// declared flag set.
struct Flags {
    values: Vec<(String, String)>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

/// Walks `args`, pairing each `--flag` with its value. Flags listed in
/// `switches` take no value and merely toggle; flags in neither list,
/// value flags without a value, and repeated flags are errors; non-flag
/// tokens are collected as positionals for the caller to vet.
fn collect_flags(
    command: &str,
    args: &[String],
    allowed: &[&str],
    switches: &[&str],
) -> Result<Flags, CliError> {
    let mut values: Vec<(String, String)> = Vec::new();
    let mut seen_switches: Vec<String> = Vec::new();
    let mut positionals = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a.starts_with("--") {
            if switches.contains(&a.as_str()) {
                if seen_switches.iter().any(|s| s == a) {
                    return Err(CliError(format!("flag {a} given more than once")));
                }
                seen_switches.push(a.clone());
                i += 1;
                continue;
            }
            if !allowed.contains(&a.as_str()) {
                let mut all: Vec<&str> = allowed.to_vec();
                all.extend_from_slice(switches);
                return Err(CliError(format!(
                    "unknown flag for `{command}`: {a} (allowed: {})",
                    all.join(", ")
                )));
            }
            if values.iter().any(|(k, _)| k == a) {
                return Err(CliError(format!("flag {a} given more than once")));
            }
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    values.push((a.clone(), v.clone()));
                    i += 2;
                }
                _ => return Err(CliError(format!("flag {a} needs a value"))),
            }
        } else {
            positionals.push(a.clone());
            i += 1;
        }
    }
    Ok(Flags {
        values,
        switches: seen_switches,
        positionals,
    })
}

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("invalid value for {name}: {v}"))),
            None => Ok(default),
        }
    }

    fn opt_num<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.get(name) {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| CliError(format!("invalid value for {name}: {v}"))),
            None => Ok(None),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn trace(&self) -> Option<String> {
        self.get("--trace").map(String::from)
    }

    fn reject_positionals(&self, command: &str) -> Result<(), CliError> {
        match self.positionals.first() {
            Some(p) => Err(CliError(format!(
                "unexpected argument for `{command}`: {p}"
            ))),
            None => Ok(()),
        }
    }
}

/// Parses `--algorithm` into an [`ApspAlgorithm`] (default: quantum).
fn parse_algorithm(flags: &Flags) -> Result<ApspAlgorithm, CliError> {
    match flags.get("--algorithm") {
        None | Some("quantum") => Ok(ApspAlgorithm::QuantumTriangle),
        Some("classical") => Ok(ApspAlgorithm::ClassicalTriangle),
        Some("naive") => Ok(ApspAlgorithm::NaiveBroadcast),
        Some("semiring") => Ok(ApspAlgorithm::SemiringSquaring),
        Some(other) => Err(CliError(format!("unknown algorithm: {other}"))),
    }
}

/// Parses `--faults` into a [`FaultPlan`], if given.
fn parse_fault_plan(flags: &Flags) -> Result<Option<FaultPlan>, CliError> {
    match flags.get("--faults") {
        None => Ok(None),
        Some(spec) => FaultPlan::parse(spec)
            .map(Some)
            .map_err(|e| CliError(format!("invalid --faults spec: {e}"))),
    }
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, unknown flags, unknown enum
/// values, repeated flags, stray positionals, or malformed numbers.
///
/// # Examples
///
/// ```
/// use qcc::cli::{parse, Command};
/// use qcc::algo::ApspAlgorithm;
///
/// let cmd = parse(&["apsp".into(), "--n".into(), "12".into()]).unwrap();
/// assert_eq!(
///     cmd,
///     Command::Apsp {
///         n: 12,
///         seed: 7,
///         algorithm: ApspAlgorithm::QuantumTriangle,
///         w_max: 8,
///         trace: None,
///         faults: None,
///         verify: false,
///         max_retries: 3,
///         transport: qcc::algo::TransportKind::Clique,
///         topology: None,
///     }
/// );
/// // A misspelled flag is an error, not a silently ignored token:
/// assert!(parse(&["apsp".into(), "--wamx".into(), "99".into()]).is_err());
/// ```
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "apsp" => {
            let flags = collect_flags(
                command,
                rest,
                &[
                    "--n",
                    "--seed",
                    "--algorithm",
                    "--wmax",
                    "--trace",
                    "--faults",
                    "--max-retries",
                    "--transport",
                    "--topology",
                ],
                &["--verify"],
            )?;
            flags.reject_positionals(command)?;
            let algorithm = parse_algorithm(&flags)?;
            let faults = parse_fault_plan(&flags)?;
            let transport = match flags.get("--transport") {
                None => TransportKind::Clique,
                Some(t) => TransportKind::parse(t).map_err(CliError)?,
            };
            let topology = match flags.get("--topology") {
                None => None,
                Some(t) => Some(TopologySpec::parse(t).map_err(CliError)?),
            };
            if topology.is_some() && transport != TransportKind::Gossip {
                return Err(CliError(
                    "--topology requires --transport gossip (the clique has no choice \
                     of topology)"
                        .into(),
                ));
            }
            Ok(Command::Apsp {
                n: flags.num("--n", 8)?,
                seed: flags.num("--seed", 7)?,
                algorithm,
                w_max: flags.num("--wmax", 8)?,
                trace: flags.trace(),
                faults,
                verify: flags.switch("--verify"),
                max_retries: flags.num("--max-retries", 3)?,
                transport,
                topology,
            })
        }
        "diameter" | "radius" | "ecc" => {
            let param = match command.as_str() {
                "diameter" => DistanceParam::Diameter,
                "radius" => DistanceParam::Radius,
                _ => DistanceParam::Eccentricities,
            };
            // `ecc` gathers the full vector; there is no extremum search
            // to pick a backend for.
            let mut allowed = vec![
                "--n",
                "--seed",
                "--algorithm",
                "--wmax",
                "--density",
                "--trace",
                "--faults",
                "--max-retries",
            ];
            if param != DistanceParam::Eccentricities {
                allowed.push("--backend");
            }
            let flags = collect_flags(command, rest, &allowed, &["--verify"])?;
            flags.reject_positionals(command)?;
            let algorithm = parse_algorithm(&flags)?;
            let faults = parse_fault_plan(&flags)?;
            let backend = match flags.get("--backend") {
                None | Some("quantum") => ExtremumBackend::Quantum,
                Some("scan") => ExtremumBackend::ClassicalScan,
                Some(other) => return Err(CliError(format!("unknown backend: {other}"))),
            };
            let density: f64 = flags.num("--density", 0.5)?;
            if !(0.0..=1.0).contains(&density) {
                return Err(CliError(format!(
                    "--density must be in [0, 1], got {density}"
                )));
            }
            let n: usize = flags.num("--n", 12)?;
            if n == 0 {
                return Err(CliError("--n must be at least 1".into()));
            }
            Ok(Command::Distance {
                param,
                n,
                seed: flags.num("--seed", 7)?,
                algorithm,
                w_max: flags.num("--wmax", 8)?,
                density,
                backend,
                trace: flags.trace(),
                faults,
                verify: flags.switch("--verify"),
                max_retries: flags.num("--max-retries", 3)?,
            })
        }
        "find-edges" => {
            let flags = collect_flags(
                command,
                rest,
                &["--n", "--seed", "--backend", "--trace"],
                &[],
            )?;
            flags.reject_positionals(command)?;
            let backend = match flags.get("--backend") {
                None | Some("quantum") => SearchBackend::Quantum,
                Some("classical") => SearchBackend::Classical,
                Some(other) => return Err(CliError(format!("unknown backend: {other}"))),
            };
            Ok(Command::FindEdges {
                n: flags.num("--n", 16)?,
                seed: flags.num("--seed", 7)?,
                backend,
                trace: flags.trace(),
            })
        }
        "paths" => {
            let flags = collect_flags(command, rest, &["--n", "--seed", "--trace"], &[])?;
            flags.reject_positionals(command)?;
            Ok(Command::Paths {
                n: flags.num("--n", 8)?,
                seed: flags.num("--seed", 7)?,
                trace: flags.trace(),
            })
        }
        "gamma" => {
            let flags = collect_flags(command, rest, &["--n", "--seed", "--bits", "--trace"], &[])?;
            flags.reject_positionals(command)?;
            Ok(Command::Gamma {
                n: flags.num("--n", 16)?,
                seed: flags.num("--seed", 7)?,
                bits: flags.num("--bits", 9)?,
                trace: flags.trace(),
            })
        }
        "serve" => {
            let flags = collect_flags(
                command,
                rest,
                &[
                    "--n",
                    "--seed",
                    "--algorithm",
                    "--wmax",
                    "--row-cache",
                    "--trace",
                    "--faults",
                    "--max-retries",
                ],
                &["--verify"],
            )?;
            flags.reject_positionals(command)?;
            let algorithm = parse_algorithm(&flags)?;
            let faults = parse_fault_plan(&flags)?;
            let row_cache: Option<usize> = flags.opt_num("--row-cache")?;
            if row_cache == Some(0) {
                return Err(CliError("--row-cache must be at least 1".into()));
            }
            Ok(Command::Serve {
                n: flags.num("--n", 8)?,
                seed: flags.num("--seed", 7)?,
                algorithm,
                w_max: flags.num("--wmax", 8)?,
                row_cache,
                trace: flags.trace(),
                faults,
                verify: flags.switch("--verify"),
                max_retries: flags.num("--max-retries", 3)?,
            })
        }
        "trace-summary" => {
            let flags = collect_flags(command, rest, &["--expect-rounds", "--max-depth"], &[])?;
            let file = match flags.positionals.as_slice() {
                [f] => f.clone(),
                [] => return Err(CliError("trace-summary needs a trace file argument".into())),
                [_, extra, ..] => {
                    return Err(CliError(format!(
                        "unexpected argument for `{command}`: {extra}"
                    )))
                }
            };
            Ok(Command::TraceSummary {
                file,
                expect_rounds: flags.opt_num("--expect-rounds")?,
                max_depth: flags.num("--max-depth", usize::MAX)?,
            })
        }
        other => Err(CliError(format!(
            "unknown command: {other} (try `qcc help`)"
        ))),
    }
}

/// Creates the NDJSON sink for `--trace FILE`, if requested.
fn open_sink(path: Option<&String>) -> Result<Option<TraceSink>, CliError> {
    match path {
        None => Ok(None),
        Some(p) => TraceSink::to_file(p)
            .map(Some)
            .map_err(|e| CliError(format!("cannot create trace file {p}: {e}"))),
    }
}

fn flush_sink(sink: Option<&TraceSink>) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(sink) = sink {
        sink.flush()?;
    }
    Ok(())
}

/// How a successfully-parsed command finished, mapped to the process
/// exit code by `src/bin/qcc.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// The command completed normally (exit 0).
    Success,
    /// The Las-Vegas driver exhausted its retries and no attempt (nor
    /// the fallback) produced a certificate-verified answer (exit 3).
    VerificationFailed,
    /// The answer is correct and verified, but it came from the
    /// classical semiring fallback, not the requested algorithm
    /// (exit 4 — distinguishable in scripts and CI).
    DegradedFallback,
}

impl RunStatus {
    /// The process exit code this status maps to.
    #[must_use]
    pub fn exit_code(self) -> u8 {
        match self {
            RunStatus::Success => 0,
            RunStatus::VerificationFailed => 3,
            RunStatus::DegradedFallback => 4,
        }
    }

    /// A one-line stderr diagnostic, if the status warrants one.
    #[must_use]
    pub fn diagnostic(self) -> Option<&'static str> {
        match self {
            RunStatus::Success => None,
            RunStatus::VerificationFailed => {
                Some("verification failed: no attempt produced a certified answer")
            }
            RunStatus::DegradedFallback => {
                Some("degraded: answer came from the classical semiring fallback")
            }
        }
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates algorithm errors and I/O errors. Driver outcomes that are
/// not hard errors (verification exhaustion, fallback degradation) are
/// reported through the returned [`RunStatus`] instead.
pub fn run(
    cmd: &Command,
    out: &mut dyn std::io::Write,
) -> Result<RunStatus, Box<dyn std::error::Error>> {
    match *cmd {
        Command::Help => {
            write!(out, "{USAGE}")?;
        }
        Command::Apsp {
            n,
            seed,
            algorithm,
            w_max,
            ref trace,
            ref faults,
            verify,
            max_retries,
            transport,
            ref topology,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = crate::graph::generators::random_reweighted_digraph(n, 0.5, w_max, &mut rng);
            let sink = open_sink(trace.as_ref())?;
            if transport == TransportKind::Gossip {
                let cfg = GossipApspConfig {
                    topology: topology.unwrap_or(TopologySpec::Mesh { degree: 4 }),
                    max_retries,
                    // Gossip always certifies: the check is local and free
                    // of rounds, so there is no cheaper mode to offer.
                    verify: true,
                    net: faults.clone().map(NetConfig::faulty).unwrap_or_default(),
                    seed,
                    ..GossipApspConfig::default()
                };
                let driven = gossip_apsp(&g, &cfg, sink.as_ref());
                flush_sink(sink.as_ref())?;
                match driven {
                    Ok(report) => {
                        writeln!(
                            out,
                            "gossip APSP on n={n} (seed {seed}, topology {}): \
                             {} rounds total, {} attempt(s), verified: {}",
                            report.topology,
                            report.total_rounds,
                            report.attempts.len(),
                            report.verified,
                        )?;
                        writeln!(
                            out,
                            "coded gossip: {} packets sent, {} wasted ({:.1}%), \
                             {} full nodes",
                            report.stats.packets_sent,
                            report.stats.wasted_packets,
                            100.0 * report.stats.waste_fraction(),
                            report.stats.full_nodes,
                        )?;
                        let finite = report
                            .distances
                            .entries()
                            .filter(|(_, _, w)| w.is_finite())
                            .count();
                        writeln!(out, "{finite}/{} pairs reachable", n * n)?;
                        return Ok(RunStatus::Success);
                    }
                    Err(ApspError::VerificationFailed { attempts }) => {
                        writeln!(
                            out,
                            "gossip APSP on n={n} (seed {seed}): {attempts} attempt(s) \
                             exhausted without a verified answer"
                        )?;
                        return Ok(RunStatus::VerificationFailed);
                    }
                    Err(e) => return Err(Box::new(e)),
                }
            }
            if faults.is_none() && !verify {
                let report = apsp_traced(&g, Params::paper(), algorithm, &mut rng, sink.as_ref())?;
                flush_sink(sink.as_ref())?;
                writeln!(
                    out,
                    "{algorithm:?} APSP on n={n} (seed {seed}): {} rounds, {} products",
                    report.rounds, report.products
                )?;
                let finite = report
                    .distances
                    .entries()
                    .filter(|(_, _, w)| w.is_finite())
                    .count();
                writeln!(out, "{finite}/{} pairs reachable", n * n)?;
                return Ok(RunStatus::Success);
            }
            let cfg = DriverConfig {
                algorithm,
                params: Params::paper(),
                max_retries,
                verify,
                fallback: FallbackPolicy::Semiring,
                net: faults.clone().map(NetConfig::faulty).unwrap_or_default(),
            };
            let driven = apsp_driver(&g, &cfg, &mut rng, sink.as_ref());
            flush_sink(sink.as_ref())?;
            match driven {
                Ok(out_report) => {
                    writeln!(
                        out,
                        "{algorithm:?} APSP on n={n} (seed {seed}): {} rounds total, \
                         {} attempt(s), verified: {}, fallback: {}",
                        out_report.total_rounds,
                        out_report.attempts.len(),
                        out_report.verified,
                        out_report.used_fallback
                    )?;
                    let finite = out_report
                        .report
                        .distances
                        .entries()
                        .filter(|(_, _, w)| w.is_finite())
                        .count();
                    writeln!(out, "{finite}/{} pairs reachable", n * n)?;
                    if out_report.used_fallback {
                        return Ok(RunStatus::DegradedFallback);
                    }
                }
                Err(ApspError::VerificationFailed { attempts }) => {
                    writeln!(
                        out,
                        "{algorithm:?} APSP on n={n} (seed {seed}): \
                         {attempts} attempt(s) exhausted without a verified answer"
                    )?;
                    return Ok(RunStatus::VerificationFailed);
                }
                Err(e) => return Err(Box::new(e)),
            }
        }
        Command::Distance {
            param,
            n,
            seed,
            algorithm,
            w_max,
            density,
            backend,
            ref trace,
            ref faults,
            verify,
            max_retries,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g =
                crate::graph::generators::random_reweighted_digraph(n, density, w_max, &mut rng);
            let sink = open_sink(trace.as_ref())?;
            let cfg = ExtremumConfig {
                algorithm,
                backend,
                max_retries,
                verify,
                net: faults.clone().map(NetConfig::faulty).unwrap_or_default(),
                ..ExtremumConfig::new(param)
            };
            let result = distance_params(&g, &cfg, &mut rng, sink.as_ref());
            flush_sink(sink.as_ref())?;
            let report = match result {
                Ok(report) => report,
                Err(ApspError::VerificationFailed { attempts }) => {
                    writeln!(
                        out,
                        "{} on n={n} (seed {seed}): \
                         {attempts} attempt(s) exhausted without a verified answer",
                        param.label()
                    )?;
                    return Ok(RunStatus::VerificationFailed);
                }
                Err(e) => return Err(Box::new(e)),
            };
            let search = match param {
                DistanceParam::Eccentricities => "gather",
                _ => backend.label(),
            };
            writeln!(
                out,
                "{} via {algorithm:?}+{search} on n={n} (seed {seed}): \
                 {} rounds total, {} oracle evaluations",
                param.label(),
                report.total_rounds,
                report.evaluations
            )?;
            match param {
                DistanceParam::Eccentricities => {
                    for (v, e) in report.eccentricities.iter().enumerate() {
                        writeln!(out, "  ecc({v}) = {e}")?;
                    }
                }
                _ => {
                    let witness = report.witness.unwrap_or(0);
                    writeln!(
                        out,
                        "{} = {} (witness vertex {witness})",
                        param.label(),
                        report.value
                    )?;
                }
            }
            if !report.connected {
                writeln!(
                    out,
                    "graph is disconnected: unreachable pairs have distance inf"
                )?;
            }
            writeln!(
                out,
                "distance stage {} rounds, search stage {} rounds, \
                 {} search attempt(s), verified: {}, fallback: {}",
                report.distance_rounds,
                report.search_rounds,
                report.search_attempts.len(),
                report.verified,
                report.used_fallback
            )?;
            if report.used_fallback {
                return Ok(RunStatus::DegradedFallback);
            }
        }
        Command::FindEdges {
            n,
            seed,
            backend,
            ref trace,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = crate::graph::generators::planted_disjoint_triangles(
                n,
                n / 8,
                (8.0 / n as f64).min(0.5),
                &mut rng,
            );
            let s = PairSet::all_pairs(n);
            let mut net = Clique::new(n)?;
            let sink = open_sink(trace.as_ref())?;
            if let Some(sink) = &sink {
                net.set_trace_sink(sink.clone());
            }
            net.push_span("find-edges");
            let report = compute_pairs(&g, &s, Params::paper(), backend, &mut net, &mut rng)?;
            net.close_all_spans();
            flush_sink(sink.as_ref())?;
            let exact = report.found == reference_find_edges(&g, &s);
            writeln!(
                out,
                "{backend:?} FindEdgesWithPromise on n={n}: {} pairs in {} rounds (exact: {exact})",
                report.found.len(),
                report.rounds
            )?;
        }
        Command::Paths { n, seed, ref trace } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = crate::graph::generators::random_reweighted_digraph(n, 0.5, 6, &mut rng);
            let sink = open_sink(trace.as_ref())?;
            let report = apsp_with_paths_traced(
                &g,
                Params::paper(),
                SearchBackend::Classical,
                &mut rng,
                sink.as_ref(),
            )?;
            flush_sink(sink.as_ref())?;
            writeln!(out, "witnessed APSP on n={n}: {} rounds", report.rounds)?;
            for v in 1..n.min(4) {
                match report.oracle.path(0, v) {
                    Some(p) => {
                        let d = report.oracle.distances()[(0, v)];
                        writeln!(out, "  0 -> {v}: dist {d}, route {p:?}")?;
                    }
                    None => writeln!(out, "  0 -> {v}: unreachable")?,
                }
            }
        }
        Command::Gamma {
            n,
            seed,
            bits,
            ref trace,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = crate::graph::generators::random_ugraph(n, 0.5, 5, &mut rng);
            let pairs: PairSet = g.edges().map(|(u, v, _)| (u, v)).take(5).collect();
            if pairs.is_empty() {
                writeln!(out, "instance has no edges; nothing to count")?;
                return Ok(RunStatus::Success);
            }
            let mut net = Clique::new(n)?;
            let sink = open_sink(trace.as_ref())?;
            if let Some(sink) = &sink {
                net.set_trace_sink(sink.clone());
            }
            net.push_span("gamma");
            let report = quantum_gamma_count(&g, &pairs, bits, 5, &mut net, &mut rng)?;
            net.close_all_spans();
            flush_sink(sink.as_ref())?;
            for &(u, v, est, truth) in &report.estimates {
                writeln!(out, "  Gamma({u}, {v}) ~= {est} (true {truth})")?;
            }
            writeln!(
                out,
                "{} oracle queries/pair, {} rounds",
                report.oracle_queries, report.rounds
            )?;
        }
        Command::Serve {
            n,
            seed,
            algorithm,
            w_max,
            row_cache,
            ref trace,
            ref faults,
            verify,
            max_retries,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = crate::graph::generators::random_reweighted_digraph(n, 0.5, w_max, &mut rng);
            let sink = open_sink(trace.as_ref())?;
            // Fault injection and verification only compose through the
            // Las-Vegas driver; the witnessed-squaring plan adds explicit
            // route witnesses when neither is requested.
            let plan = if faults.is_some() || verify {
                LoadPlan::Driver(Box::new(DriverConfig {
                    algorithm,
                    params: Params::paper(),
                    max_retries,
                    verify,
                    fallback: FallbackPolicy::Semiring,
                    net: faults.clone().map(NetConfig::faulty).unwrap_or_default(),
                }))
            } else {
                match algorithm {
                    ApspAlgorithm::QuantumTriangle => LoadPlan::Witnessed {
                        backend: SearchBackend::Quantum,
                    },
                    ApspAlgorithm::ClassicalTriangle => LoadPlan::Witnessed {
                        backend: SearchBackend::Classical,
                    },
                    other => LoadPlan::Driver(Box::new(DriverConfig {
                        algorithm: other,
                        params: Params::paper(),
                        max_retries,
                        verify: false,
                        fallback: FallbackPolicy::Semiring,
                        net: NetConfig::default(),
                    })),
                }
            };
            let cfg = EngineConfig {
                plan,
                params: Params::paper(),
                row_cache,
            };
            let loaded = QueryEngine::load(g, &cfg, &mut rng, sink.as_ref());
            flush_sink(sink.as_ref())?;
            let mut engine = match loaded {
                Ok(engine) => engine,
                Err(ApspError::VerificationFailed { attempts }) => {
                    writeln!(
                        out,
                        "serve: {attempts} attempt(s) exhausted without a verified answer"
                    )?;
                    return Ok(RunStatus::VerificationFailed);
                }
                Err(e) => return Err(Box::new(e)),
            };
            let lines = crate::serve::spawn_stdin_reader();
            crate::serve::serve(&mut engine, &lines, out)?;
            if engine.load_report().used_fallback {
                return Ok(RunStatus::DegradedFallback);
            }
        }
        Command::TraceSummary {
            ref file,
            expect_rounds,
            max_depth,
        } => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| CliError(format!("cannot read {file}: {e}")))?;
            let events = parse_trace(&text)?;
            let summary = TraceSummary::from_events(&events)?;
            summary.verify()?;
            write!(out, "{}", summary.render(max_depth))?;
            if let Some(expected) = expect_rounds {
                let got = summary.total_rounds();
                if got != expected {
                    return Err(Box::new(CliError(format!(
                        "trace total is {got} rounds, expected {expected}"
                    ))));
                }
                writeln!(out, "round total matches expected {expected}")?;
            }
        }
    }
    Ok(RunStatus::Success)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("qcc-cli-{tag}-{}.ndjson", std::process::id()))
    }

    #[test]
    fn empty_and_help_parse_to_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn apsp_flags_parse() {
        let cmd = parse(&argv("apsp --n 12 --seed 3 --algorithm semiring --wmax 99")).unwrap();
        assert_eq!(
            cmd,
            Command::Apsp {
                n: 12,
                seed: 3,
                algorithm: ApspAlgorithm::SemiringSquaring,
                w_max: 99,
                trace: None,
                faults: None,
                verify: false,
                max_retries: 3,
                transport: TransportKind::Clique,
                topology: None,
            }
        );
    }

    #[test]
    fn apsp_fault_flags_parse() {
        let cmd = parse(&argv(
            "apsp --faults drop=0.1,seed=3 --verify --max-retries 2",
        ))
        .unwrap();
        match cmd {
            Command::Apsp {
                faults,
                verify,
                max_retries,
                ..
            } => {
                let plan = faults.expect("fault plan parsed");
                assert!((plan.drop_rate - 0.1).abs() < 1e-12);
                assert_eq!(plan.seed, 3);
                assert!(verify);
                assert_eq!(max_retries, 2);
            }
            other => panic!("unexpected command: {other:?}"),
        }
    }

    #[test]
    fn apsp_transport_flags_parse() {
        let cmd = parse(&argv("apsp --transport gossip --topology mesh:6")).unwrap();
        match cmd {
            Command::Apsp {
                transport,
                topology,
                ..
            } => {
                assert_eq!(transport, TransportKind::Gossip);
                assert_eq!(topology, Some(TopologySpec::Mesh { degree: 6 }));
            }
            other => panic!("unexpected command: {other:?}"),
        }
        // Topology only makes sense for gossip; on the clique it is a
        // pointed error, not a silently ignored flag.
        let e = parse(&argv("apsp --topology ring")).unwrap_err();
        assert!(e.0.contains("--transport gossip"), "{e}");
        let e = parse(&argv("apsp --transport telepathy")).unwrap_err();
        assert!(e.0.contains("telepathy"), "{e}");
        let e = parse(&argv("apsp --transport gossip --topology blob")).unwrap_err();
        assert!(e.0.contains("blob"), "{e}");
    }

    #[test]
    fn run_gossip_apsp_smoke() {
        let mut buf = Vec::new();
        let cmd = Command::Apsp {
            n: 6,
            seed: 1,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
            trace: None,
            faults: Some(FaultPlan::parse("drop=0.05,seed=2").unwrap()),
            verify: false,
            max_retries: 3,
            transport: TransportKind::Gossip,
            topology: Some(TopologySpec::Ring),
        };
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("rounds total"), "{text}");
        assert!(text.contains("wasted"), "{text}");
        assert!(text.contains("verified: true"), "{text}");
        assert!(text.contains("topology ring"), "{text}");
    }

    #[test]
    fn distance_flags_parse() {
        let cmd = parse(&argv(
            "diameter --n 20 --seed 3 --algorithm naive --wmax 9 --density 0.25 --backend scan",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Distance {
                param: DistanceParam::Diameter,
                n: 20,
                seed: 3,
                algorithm: ApspAlgorithm::NaiveBroadcast,
                w_max: 9,
                density: 0.25,
                backend: ExtremumBackend::ClassicalScan,
                trace: None,
                faults: None,
                verify: false,
                max_retries: 3,
            }
        );
        // Defaults: n 12, seed 7, quantum APSP + quantum search.
        match parse(&argv("radius")).unwrap() {
            Command::Distance {
                param,
                n,
                seed,
                algorithm,
                backend,
                verify,
                ..
            } => {
                assert_eq!(param, DistanceParam::Radius);
                assert_eq!((n, seed), (12, 7));
                assert_eq!(algorithm, ApspAlgorithm::QuantumTriangle);
                assert_eq!(backend, ExtremumBackend::Quantum);
                assert!(!verify);
            }
            other => panic!("unexpected command: {other:?}"),
        }
        match parse(&argv("ecc --verify")).unwrap() {
            Command::Distance { param, verify, .. } => {
                assert_eq!(param, DistanceParam::Eccentricities);
                assert!(verify);
            }
            other => panic!("unexpected command: {other:?}"),
        }
    }

    #[test]
    fn distance_rejects_bad_flags() {
        // ecc has no extremum search, so no --backend.
        let e = parse(&argv("ecc --backend scan")).unwrap_err();
        assert!(e.0.contains("--backend"), "{e}");
        assert!(parse(&argv("diameter --backend analog")).is_err());
        assert!(parse(&argv("diameter --density 1.5")).is_err());
        assert!(parse(&argv("diameter --density -0.1")).is_err());
        assert!(parse(&argv("radius --n 0")).is_err());
        assert!(parse(&argv("diameter --algorithm warp")).is_err());
        assert!(parse(&argv("diameter stray")).is_err());
    }

    #[test]
    fn serve_flags_parse() {
        let cmd = parse(&argv("serve --n 12 --seed 3 --row-cache 4 --verify")).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                n: 12,
                seed: 3,
                algorithm: ApspAlgorithm::QuantumTriangle,
                w_max: 8,
                row_cache: Some(4),
                trace: None,
                faults: None,
                verify: true,
                max_retries: 3,
            }
        );
        // Defaults mirror `apsp`.
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                n,
                seed,
                row_cache,
                verify,
                ..
            } => {
                assert_eq!((n, seed, row_cache, verify), (8, 7, None, false));
            }
            other => panic!("unexpected command: {other:?}"),
        }
    }

    #[test]
    fn serve_rejects_bad_flags() {
        let e = parse(&argv("serve --row-cache 0")).unwrap_err();
        assert!(e.0.contains("--row-cache"), "{e}");
        assert!(parse(&argv("serve --row-cache many")).is_err());
        assert!(parse(&argv("serve --algorithm warp")).is_err());
        assert!(parse(&argv("serve --batch 9")).is_err());
        assert!(parse(&argv("serve stray")).is_err());
    }

    #[test]
    fn bad_fault_specs_are_rejected() {
        let e = parse(&argv("apsp --faults drop=eleven")).unwrap_err();
        assert!(e.0.contains("invalid --faults spec"), "{e}");
        assert!(parse(&argv("apsp --faults warp=0.5")).is_err());
        // --verify is a switch: a trailing value becomes a stray positional.
        let e = parse(&argv("apsp --verify yes")).unwrap_err();
        assert!(e.0.contains("yes"), "{e}");
        // Switches cannot repeat either.
        assert!(parse(&argv("apsp --verify --verify")).is_err());
    }

    #[test]
    fn trace_flag_parses_on_every_runner() {
        for line in [
            "apsp --trace out.ndjson",
            "find-edges --trace out.ndjson",
            "paths --trace out.ndjson",
            "gamma --trace out.ndjson",
        ] {
            let cmd = parse(&argv(line)).unwrap();
            let trace = match cmd {
                Command::Apsp { trace, .. }
                | Command::FindEdges { trace, .. }
                | Command::Paths { trace, .. }
                | Command::Gamma { trace, .. } => trace,
                other => panic!("unexpected command: {other:?}"),
            };
            assert_eq!(trace.as_deref(), Some("out.ndjson"), "{line}");
        }
    }

    #[test]
    fn trace_summary_parses() {
        assert_eq!(
            parse(&argv(
                "trace-summary run.ndjson --expect-rounds 42 --max-depth 3"
            ))
            .unwrap(),
            Command::TraceSummary {
                file: "run.ndjson".into(),
                expect_rounds: Some(42),
                max_depth: 3,
            }
        );
        assert!(parse(&argv("trace-summary")).is_err());
        assert!(parse(&argv("trace-summary a.ndjson b.ndjson")).is_err());
    }

    #[test]
    fn unknown_values_are_rejected() {
        assert!(parse(&argv("apsp --algorithm warp")).is_err());
        assert!(parse(&argv("find-edges --backend analog")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("apsp --n")).is_err());
        assert!(parse(&argv("apsp --n twelve")).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_and_named() {
        let e = parse(&argv("apsp --wamx 99")).unwrap_err();
        assert!(e.0.contains("--wamx"), "{e}");
        assert!(e.0.contains("--wmax"), "should list allowed flags: {e}");
        // Flags valid on one subcommand are still rejected on another.
        assert!(parse(&argv("paths --bits 3")).is_err());
        assert!(parse(&argv("gamma --wmax 2")).is_err());
        assert!(parse(&argv("find-edges --algorithm quantum")).is_err());
    }

    #[test]
    fn stray_positionals_and_repeats_are_rejected() {
        let e = parse(&argv("apsp extra")).unwrap_err();
        assert!(e.0.contains("extra"), "{e}");
        let e = parse(&argv("apsp --n 4 --n 5")).unwrap_err();
        assert!(e.0.contains("--n"), "{e}");
    }

    #[test]
    fn run_help_prints_usage() {
        let mut buf = Vec::new();
        run(&Command::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn run_apsp_smoke() {
        let mut buf = Vec::new();
        let cmd = Command::Apsp {
            n: 6,
            seed: 1,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
            trace: None,
            faults: None,
            verify: false,
            max_retries: 3,
            transport: TransportKind::Clique,
            topology: None,
        };
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("NaiveBroadcast"));
        assert!(text.contains("rounds"));
    }

    #[test]
    fn run_find_edges_smoke() {
        let mut buf = Vec::new();
        let cmd = Command::FindEdges {
            n: 16,
            seed: 2,
            backend: SearchBackend::Classical,
            trace: None,
        };
        run(&cmd, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("exact: true"));
    }

    #[test]
    fn run_paths_smoke() {
        let mut buf = Vec::new();
        run(
            &Command::Paths {
                n: 6,
                seed: 3,
                trace: None,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("witnessed APSP"));
    }

    #[test]
    fn run_gamma_smoke() {
        let mut buf = Vec::new();
        run(
            &Command::Gamma {
                n: 12,
                seed: 4,
                bits: 6,
                trace: None,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Gamma("));
    }

    fn distance_cmd(param: DistanceParam, n: usize, seed: u64, density: f64) -> Command {
        Command::Distance {
            param,
            n,
            seed,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
            density,
            backend: ExtremumBackend::Quantum,
            trace: None,
            faults: None,
            verify: false,
            max_retries: 3,
        }
    }

    #[test]
    fn run_diameter_smoke() {
        let mut buf = Vec::new();
        let status = run(&distance_cmd(DistanceParam::Diameter, 8, 1, 0.6), &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("diameter = "), "{text}");
        assert!(text.contains("witness vertex"), "{text}");
        assert!(text.contains("rounds total"), "{text}");
    }

    #[test]
    fn run_distance_on_empty_graph_reports_disconnected_and_inf() {
        // Density 0 guarantees no arcs: every off-diagonal distance is
        // infinite, so the honest diameter is inf, not 0.
        let mut buf = Vec::new();
        let status = run(&distance_cmd(DistanceParam::Diameter, 5, 2, 0.0), &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("diameter = inf"), "{text}");
        assert!(text.contains("disconnected"), "{text}");
    }

    #[test]
    fn run_ecc_lists_the_full_vector() {
        let mut buf = Vec::new();
        let status = run(
            &distance_cmd(DistanceParam::Eccentricities, 5, 3, 1.0),
            &mut buf,
        )
        .unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ecc(0) = "), "{text}");
        assert!(text.contains("ecc(4) = "), "{text}");
    }

    #[test]
    fn run_traced_radius_then_summary_agrees_on_rounds() {
        let path = temp_path("radius-summary");
        let mut buf = Vec::new();
        let mut cmd = distance_cmd(DistanceParam::Radius, 7, 4, 0.6);
        if let Command::Distance { trace, verify, .. } = &mut cmd {
            *trace = Some(path.to_string_lossy().into_owned());
            *verify = true;
        }
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        let rounds: u64 = text
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("rounds in output");
        let mut buf = Vec::new();
        let status = run(
            &Command::TraceSummary {
                file: path.to_string_lossy().into_owned(),
                expect_rounds: Some(rounds),
                max_depth: usize::MAX,
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("distance-param"), "{text}");
        assert!(
            text.contains(&format!("round total matches expected {rounds}")),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_faulty_verified_diameter_reports_success() {
        let mut buf = Vec::new();
        let mut cmd = distance_cmd(DistanceParam::Diameter, 6, 9, 0.6);
        if let Command::Distance { faults, verify, .. } = &mut cmd {
            *faults = Some(FaultPlan::parse("drop=0.1,corrupt=0.02,seed=4").unwrap());
            *verify = true;
        }
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("verified: true"), "{text}");
        assert!(text.contains("fallback: false"), "{text}");
    }

    #[test]
    fn run_faulty_verified_apsp_reports_success() {
        let path = temp_path("faulty-verify");
        let mut buf = Vec::new();
        let cmd = Command::Apsp {
            n: 6,
            seed: 9,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
            trace: Some(path.to_string_lossy().into_owned()),
            faults: Some(FaultPlan::parse("drop=0.1,corrupt=0.02,seed=4").unwrap()),
            verify: true,
            max_retries: 3,
            transport: TransportKind::Clique,
            topology: None,
        };
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("verified: true"), "{text}");
        assert!(text.contains("fallback: false"), "{text}");

        // The driver's reported round total must agree with the trace.
        let rounds: u64 = text
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("rounds in output");
        let mut buf = Vec::new();
        let status = run(
            &Command::TraceSummary {
                file: path.to_string_lossy().into_owned(),
                expect_rounds: Some(rounds),
                max_depth: usize::MAX,
            },
            &mut buf,
        )
        .unwrap();
        assert_eq!(status, RunStatus::Success);
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains(&format!("round total matches expected {rounds}")),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_crashed_node_exhausts_verification() {
        // Node 0 crashes at round 0 and stays down: every attempt and the
        // semiring fallback lose it, so the driver can never certify.
        let mut buf = Vec::new();
        let cmd = Command::Apsp {
            n: 5,
            seed: 2,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
            trace: None,
            faults: Some(FaultPlan::parse("crash=0@0").unwrap()),
            verify: true,
            max_retries: 0,
            transport: TransportKind::Clique,
            topology: None,
        };
        let status = run(&cmd, &mut buf).unwrap();
        assert_eq!(status, RunStatus::VerificationFailed);
        assert_eq!(status.exit_code(), 3);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("without a verified answer"), "{text}");
    }

    #[test]
    fn run_status_exit_codes_are_distinct() {
        assert_eq!(RunStatus::Success.exit_code(), 0);
        assert_eq!(RunStatus::VerificationFailed.exit_code(), 3);
        assert_eq!(RunStatus::DegradedFallback.exit_code(), 4);
        assert!(RunStatus::Success.diagnostic().is_none());
        assert!(RunStatus::DegradedFallback.diagnostic().is_some());
    }

    #[test]
    fn run_traced_apsp_then_summary_agrees_on_rounds() {
        let path = temp_path("apsp-summary");
        let mut buf = Vec::new();
        run(
            &Command::Apsp {
                n: 6,
                seed: 5,
                algorithm: ApspAlgorithm::NaiveBroadcast,
                w_max: 5,
                trace: Some(path.to_string_lossy().into_owned()),
                faults: None,
                verify: false,
                max_retries: 3,
                transport: TransportKind::Clique,
                topology: None,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rounds: u64 = text
            .split(": ")
            .nth(1)
            .and_then(|s| s.split(' ').next())
            .and_then(|s| s.parse().ok())
            .expect("rounds in output");

        let mut buf = Vec::new();
        run(
            &Command::TraceSummary {
                file: path.to_string_lossy().into_owned(),
                expect_rounds: Some(rounds),
                max_depth: usize::MAX,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("apsp"), "{text}");
        assert!(
            text.contains(&format!("round total matches expected {rounds}")),
            "{text}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summary_rejects_wrong_expected_rounds() {
        let path = temp_path("bad-expect");
        let mut buf = Vec::new();
        run(
            &Command::Paths {
                n: 5,
                seed: 6,
                trace: Some(path.to_string_lossy().into_owned()),
            },
            &mut buf,
        )
        .unwrap();
        let e = run(
            &Command::TraceSummary {
                file: path.to_string_lossy().into_owned(),
                expect_rounds: Some(u64::MAX),
                max_depth: usize::MAX,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("expected"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_summary_rejects_malformed_files() {
        let path = temp_path("malformed");
        std::fs::write(&path, "this is not ndjson\n").unwrap();
        let e = run(
            &Command::TraceSummary {
                file: path.to_string_lossy().into_owned(),
                expect_rounds: None,
                max_depth: usize::MAX,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.to_string().contains("line 1"), "{e}");
        std::fs::remove_file(&path).ok();
    }
}
