//! Command-line front-end (argument parsing and dispatch for `qcc`).
//!
//! Kept dependency-free: a small hand-rolled `--flag value` parser feeding
//! typed commands. The binary in `src/bin/qcc.rs` is a thin wrapper so the
//! parsing and dispatch logic stays unit-testable.

use crate::algo::{
    apsp, apsp_with_paths, compute_pairs, quantum_gamma_count, reference_find_edges, ApspAlgorithm,
    PairSet, Params, SearchBackend,
};
use crate::congest::Clique;
use crate::graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Run APSP on a random instance and report rounds.
    Apsp {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Algorithm selection.
        algorithm: ApspAlgorithm,
        /// Maximum weight magnitude.
        w_max: u64,
    },
    /// Run `FindEdgesWithPromise` on a planted instance.
    FindEdges {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Quantum or classical Step 3.
        backend: SearchBackend,
    },
    /// Reconstruct explicit shortest routes.
    Paths {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Count negative triangles through sample pairs by quantum counting.
    Gamma {
        /// Vertex count.
        n: usize,
        /// RNG seed.
        seed: u64,
        /// Phase-register bits.
        bits: u32,
    },
    /// Print usage.
    Help,
}

/// A CLI parsing error with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage text shown by `qcc help`.
pub const USAGE: &str = "\
qcc — quantum distributed APSP in the CONGEST-CLIQUE model

USAGE:
    qcc <COMMAND> [--n N] [--seed S] [flags]

COMMANDS:
    apsp        run all-pairs shortest paths          [--algorithm quantum|classical|naive|semiring] [--wmax W]
    find-edges  run FindEdgesWithPromise              [--backend quantum|classical]
    paths       APSP with explicit route extraction
    gamma       quantum triangle counting             [--bits B]
    help        show this message

Defaults: --n 8 (apsp/paths), --n 16 (find-edges/gamma), --seed 7.
";

fn get_flag(args: &[String], name: &str) -> Result<Option<String>, CliError> {
    for (i, a) in args.iter().enumerate() {
        if a == name {
            return match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
                _ => Err(CliError(format!("flag {name} needs a value"))),
            };
        }
    }
    Ok(None)
}

fn parse_num<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, CliError> {
    match get_flag(args, name)? {
        Some(v) => v
            .parse()
            .map_err(|_| CliError(format!("invalid value for {name}: {v}"))),
        None => Ok(default),
    }
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, unknown enum values, or
/// malformed numbers.
///
/// # Examples
///
/// ```
/// use qcc::cli::{parse, Command};
/// use qcc::algo::ApspAlgorithm;
///
/// let cmd = parse(&["apsp".into(), "--n".into(), "12".into()]).unwrap();
/// assert_eq!(
///     cmd,
///     Command::Apsp { n: 12, seed: 7, algorithm: ApspAlgorithm::QuantumTriangle, w_max: 8 }
/// );
/// ```
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "apsp" => {
            let algorithm = match get_flag(args, "--algorithm")?.as_deref() {
                None | Some("quantum") => ApspAlgorithm::QuantumTriangle,
                Some("classical") => ApspAlgorithm::ClassicalTriangle,
                Some("naive") => ApspAlgorithm::NaiveBroadcast,
                Some("semiring") => ApspAlgorithm::SemiringSquaring,
                Some(other) => return Err(CliError(format!("unknown algorithm: {other}"))),
            };
            Ok(Command::Apsp {
                n: parse_num(args, "--n", 8)?,
                seed: parse_num(args, "--seed", 7)?,
                algorithm,
                w_max: parse_num(args, "--wmax", 8)?,
            })
        }
        "find-edges" => {
            let backend = match get_flag(args, "--backend")?.as_deref() {
                None | Some("quantum") => SearchBackend::Quantum,
                Some("classical") => SearchBackend::Classical,
                Some(other) => return Err(CliError(format!("unknown backend: {other}"))),
            };
            Ok(Command::FindEdges {
                n: parse_num(args, "--n", 16)?,
                seed: parse_num(args, "--seed", 7)?,
                backend,
            })
        }
        "paths" => Ok(Command::Paths {
            n: parse_num(args, "--n", 8)?,
            seed: parse_num(args, "--seed", 7)?,
        }),
        "gamma" => Ok(Command::Gamma {
            n: parse_num(args, "--n", 16)?,
            seed: parse_num(args, "--seed", 7)?,
            bits: parse_num(args, "--bits", 9)?,
        }),
        other => Err(CliError(format!(
            "unknown command: {other} (try `qcc help`)"
        ))),
    }
}

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Propagates algorithm errors and I/O errors.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> Result<(), Box<dyn std::error::Error>> {
    match *cmd {
        Command::Help => {
            write!(out, "{USAGE}")?;
        }
        Command::Apsp {
            n,
            seed,
            algorithm,
            w_max,
        } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_reweighted_digraph(n, 0.5, w_max, &mut rng);
            let report = apsp(&g, Params::paper(), algorithm, &mut rng)?;
            writeln!(
                out,
                "{algorithm:?} APSP on n={n} (seed {seed}): {} rounds, {} products",
                report.rounds, report.products
            )?;
            let finite = report
                .distances
                .entries()
                .filter(|(_, _, w)| w.is_finite())
                .count();
            writeln!(out, "{finite}/{} pairs reachable", n * n)?;
        }
        Command::FindEdges { n, seed, backend } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::planted_disjoint_triangles(
                n,
                n / 8,
                (8.0 / n as f64).min(0.5),
                &mut rng,
            );
            let s = PairSet::all_pairs(n);
            let mut net = Clique::new(n)?;
            let report = compute_pairs(&g, &s, Params::paper(), backend, &mut net, &mut rng)?;
            let exact = report.found == reference_find_edges(&g, &s);
            writeln!(
                out,
                "{backend:?} FindEdgesWithPromise on n={n}: {} pairs in {} rounds (exact: {exact})",
                report.found.len(),
                report.rounds
            )?;
        }
        Command::Paths { n, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_reweighted_digraph(n, 0.5, 6, &mut rng);
            let report = apsp_with_paths(&g, Params::paper(), SearchBackend::Classical, &mut rng)?;
            writeln!(out, "witnessed APSP on n={n}: {} rounds", report.rounds)?;
            for v in 1..n.min(4) {
                match report.oracle.path(0, v) {
                    Some(p) => {
                        let d = report.oracle.distances()[(0, v)];
                        writeln!(out, "  0 -> {v}: dist {d}, route {p:?}")?;
                    }
                    None => writeln!(out, "  0 -> {v}: unreachable")?,
                }
            }
        }
        Command::Gamma { n, seed, bits } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generators::random_ugraph(n, 0.5, 5, &mut rng);
            let pairs: PairSet = g.edges().map(|(u, v, _)| (u, v)).take(5).collect();
            if pairs.is_empty() {
                writeln!(out, "instance has no edges; nothing to count")?;
                return Ok(());
            }
            let mut net = Clique::new(n)?;
            let report = quantum_gamma_count(&g, &pairs, bits, 5, &mut net, &mut rng)?;
            for &(u, v, est, truth) in &report.estimates {
                writeln!(out, "  Gamma({u}, {v}) ~= {est} (true {truth})")?;
            }
            writeln!(
                out,
                "{} oracle queries/pair, {} rounds",
                report.oracle_queries, report.rounds
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help_parse_to_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn apsp_flags_parse() {
        let cmd = parse(&argv("apsp --n 12 --seed 3 --algorithm semiring --wmax 99")).unwrap();
        assert_eq!(
            cmd,
            Command::Apsp {
                n: 12,
                seed: 3,
                algorithm: ApspAlgorithm::SemiringSquaring,
                w_max: 99
            }
        );
    }

    #[test]
    fn unknown_values_are_rejected() {
        assert!(parse(&argv("apsp --algorithm warp")).is_err());
        assert!(parse(&argv("find-edges --backend analog")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("apsp --n")).is_err());
        assert!(parse(&argv("apsp --n twelve")).is_err());
    }

    #[test]
    fn run_help_prints_usage() {
        let mut buf = Vec::new();
        run(&Command::Help, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("USAGE"));
    }

    #[test]
    fn run_apsp_smoke() {
        let mut buf = Vec::new();
        let cmd = Command::Apsp {
            n: 6,
            seed: 1,
            algorithm: ApspAlgorithm::NaiveBroadcast,
            w_max: 5,
        };
        run(&cmd, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("NaiveBroadcast"));
        assert!(text.contains("rounds"));
    }

    #[test]
    fn run_find_edges_smoke() {
        let mut buf = Vec::new();
        let cmd = Command::FindEdges {
            n: 16,
            seed: 2,
            backend: SearchBackend::Classical,
        };
        run(&cmd, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("exact: true"));
    }

    #[test]
    fn run_paths_smoke() {
        let mut buf = Vec::new();
        run(&Command::Paths { n: 6, seed: 3 }, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("witnessed APSP"));
    }

    #[test]
    fn run_gamma_smoke() {
        let mut buf = Vec::new();
        run(
            &Command::Gamma {
                n: 12,
                seed: 4,
                bits: 6,
            },
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("Gamma("));
    }
}
