//! The `qcc serve` I/O loop: NDJSON requests on stdin, responses on
//! stdout.
//!
//! The engine itself lives in [`qcc_apsp::serve`]; this module owns the
//! plumbing that turns a terminal (or a pipe) into batches. A dedicated
//! reader thread feeds lines into a channel; the serving loop blocks on
//! the first line, then drains everything already queued (up to
//! [`MAX_BATCH`]) so bursts are answered in one pass over the tables —
//! each distance row fetched once per batch instead of once per query.
//!
//! Malformed lines never kill the loop: they parse to `Err` and come back
//! as `{"ok":false,...}` responses in order.

use qcc_apsp::serve::{parse_request, QueryEngine, ServeRequest};
use std::io::{BufRead, Write};
use std::sync::mpsc::{Receiver, TryRecvError};

/// Largest number of queued lines absorbed into one batch. Bounds both
/// latency under a saturating producer and the per-batch allocation.
pub const MAX_BATCH: usize = 1024;

/// How a serve loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A `shutdown` request was answered.
    Shutdown,
    /// The input stream reached end-of-file.
    Eof,
}

/// Spawns the stdin reader thread and returns the line channel. The
/// thread owns the process's stdin handle and exits at end-of-file (or on
/// the first read error), which closes the channel.
pub fn spawn_stdin_reader() -> Receiver<String> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            match line {
                Ok(text) => {
                    if tx.send(text).is_err() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
    });
    rx
}

/// Runs the serve loop: emits the `ready` banner, then answers batches
/// until a `shutdown` request or end-of-input. Every batch is flushed
/// before the loop blocks again, so a line-buffered client always sees
/// its answers.
///
/// # Errors
///
/// Propagates write/flush failures on `out` (a broken pipe ends serving).
pub fn serve<W: Write + ?Sized>(
    engine: &mut QueryEngine,
    lines: &Receiver<String>,
    out: &mut W,
) -> std::io::Result<ServeOutcome> {
    writeln!(out, "{}", engine.ready_line())?;
    out.flush()?;
    loop {
        // Block for the first line of the next batch…
        let first = match lines.recv() {
            Ok(line) => line,
            Err(_) => return Ok(ServeOutcome::Eof),
        };
        let mut batch: Vec<Result<ServeRequest, String>> = Vec::new();
        let mut eof = false;
        if !first.trim().is_empty() {
            batch.push(parse_request(&first));
        }
        // …then drain whatever else is already queued.
        while batch.len() < MAX_BATCH {
            match lines.try_recv() {
                Ok(line) => {
                    if !line.trim().is_empty() {
                        batch.push(parse_request(&line));
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    eof = true;
                    break;
                }
            }
        }
        if !batch.is_empty() {
            let output = engine.answer_batch(&batch);
            for line in &output.responses {
                writeln!(out, "{line}")?;
            }
            out.flush()?;
            if output.shutdown {
                return Ok(ServeOutcome::Shutdown);
            }
        }
        if eof {
            return Ok(ServeOutcome::Eof);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcc_apsp::serve::QueryEngine;
    use qcc_graph::{random_reweighted_digraph, PathOracle};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::mpsc::channel;

    fn engine() -> QueryEngine {
        let mut rng = StdRng::seed_from_u64(33);
        let g = random_reweighted_digraph(8, 0.5, 8, &mut rng);
        let oracle = PathOracle::build(&g.adjacency_matrix());
        QueryEngine::from_tables(g, oracle, None)
    }

    #[test]
    fn loop_answers_queued_lines_and_honors_shutdown() {
        let (tx, rx) = channel();
        for line in [
            "{\"op\":\"dist\",\"id\":1,\"u\":0,\"v\":3}",
            "this is not json",
            "",
            "{\"op\":\"stats\",\"id\":2}",
            "{\"op\":\"shutdown\",\"id\":3}",
            "{\"op\":\"dist\",\"id\":4,\"u\":0,\"v\":1}",
        ] {
            tx.send(line.to_string()).unwrap();
        }
        let mut eng = engine();
        let mut out = Vec::new();
        let outcome = serve(&mut eng, &rx, &mut out).unwrap();
        assert_eq!(outcome, ServeOutcome::Shutdown);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // ready + 5 responses (blank line skipped); the post-shutdown query
        // was still in the batch and answered before the loop stopped.
        assert_eq!(lines.len(), 6, "{text}");
        assert!(lines[0].contains("\"op\":\"ready\""));
        assert!(lines[1].contains("\"id\":1"));
        assert!(lines[2].contains("\"ok\":false"));
        assert!(lines[3].contains("\"op\":\"stats\""));
        assert!(lines[4].contains("\"op\":\"shutdown\""));
        assert!(lines[5].contains("\"id\":4"));
    }

    #[test]
    fn loop_ends_cleanly_at_eof() {
        let (tx, rx) = channel();
        tx.send("{\"op\":\"dist\",\"u\":1,\"v\":2}".to_string())
            .unwrap();
        drop(tx);
        let mut eng = engine();
        let mut out = Vec::new();
        let outcome = serve(&mut eng, &rx, &mut out).unwrap();
        assert_eq!(outcome, ServeOutcome::Eof);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
    }
}
