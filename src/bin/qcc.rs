//! `qcc` — the command-line front-end. See `qcc help`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match qcc::cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", qcc::cli::USAGE);
            return ExitCode::from(2);
        }
    };
    let mut stdout = std::io::stdout();
    match qcc::cli::run(&cmd, &mut stdout) {
        Ok(status) => {
            if let Some(diag) = status.diagnostic() {
                eprintln!("qcc: {diag}");
            }
            ExitCode::from(status.exit_code())
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
